//! Temporal traffic structure: one month at 5-minute granularity.
//!
//! Figure 5b shows the transit traffic of RedIRIS over ~8,600 five-minute
//! bins with pronounced daily and weekly periodicity, and shows that the
//! offload-potential series peaks *together with* the total — the fact that
//! makes offloading reduce 95th-percentile transit bills.
//!
//! Model: `rate(t) = avg · diurnal(t − phase) · weekly(t) · noise(t)` where
//! each network's diurnal phase comes from its home-city longitude (time
//! zone). Aggregating thousands of networks naively would cost
//! networks × bins evaluations; instead networks are bucketed by phase
//! (longitude is the only per-network temporal parameter), which makes
//! aggregation exact for the deterministic part and cheap.

use rp_types::geo::WORLD_CITIES;
use rp_types::{dist, seed, Bps};
use serde::{Deserialize, Serialize};

/// Five-minute bins per day.
pub const BINS_PER_DAY: usize = 288;

/// Parameters of the temporal model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesParams {
    /// Seed for the noise stream.
    pub seed: u64,
    /// Number of 5-minute bins (default: 30 days).
    pub bins: usize,
    /// Peak-to-mean diurnal amplitude (0 = flat, 0.45 ≈ eyeball-driven).
    pub diurnal_amplitude: f64,
    /// Weekend attenuation factor.
    pub weekend_factor: f64,
    /// Local hour of the daily peak.
    pub peak_hour: f64,
    /// Standard deviation of the multiplicative log-normal noise applied to
    /// the aggregate per bin.
    pub noise_sigma: f64,
}

impl Default for SeriesParams {
    fn default() -> Self {
        SeriesParams {
            seed: 0,
            bins: 30 * BINS_PER_DAY,
            diurnal_amplitude: 0.45,
            weekend_factor: 0.72,
            peak_hour: 20.0,
            noise_sigma: 0.05,
        }
    }
}

/// Deterministic diurnal factor for UTC bin `bin` and a time-zone offset of
/// `tz_hours`.
fn diurnal(params: &SeriesParams, bin: usize, tz_hours: f64) -> f64 {
    let hour_utc = (bin % BINS_PER_DAY) as f64 * 24.0 / BINS_PER_DAY as f64;
    let local = hour_utc + tz_hours;
    let angle = (local - params.peak_hour) / 24.0 * std::f64::consts::TAU;
    1.0 + params.diurnal_amplitude * angle.cos()
}

/// Weekday/weekend factor; the month starts on a Monday.
fn weekly(params: &SeriesParams, bin: usize) -> f64 {
    let day = (bin / BINS_PER_DAY) % 7;
    if day >= 5 {
        params.weekend_factor
    } else {
        1.0
    }
}

/// Crude time zone from longitude (15° per hour).
fn tz_hours(lon_deg: f64) -> f64 {
    (lon_deg / 15.0).round()
}

/// Aggregate a set of per-network average rates into a time series.
///
/// `rates_with_city` pairs each contributing network's average rate with its
/// home-city index. Exact phase-bucket aggregation: all networks in the same
/// time zone share a diurnal curve, so the aggregate is a weighted sum of at
/// most 24 curves, plus one aggregate-level noise stream.
pub fn aggregate_series(
    rates_with_city: impl Iterator<Item = (Bps, u16)>,
    params: &SeriesParams,
) -> Vec<Bps> {
    // Bucket mass by integer time zone (-12..=14 → indices 0..27).
    let mut mass = [0.0f64; 27];
    for (rate, city_idx) in rates_with_city {
        let tz = tz_hours(WORLD_CITIES[city_idx as usize].location.lon_deg);
        let idx = (tz as i32 + 12).clamp(0, 26) as usize;
        mass[idx] += rate.0;
    }
    let mut rng = seed::rng(params.seed, "series-noise", 0);
    (0..params.bins)
        .map(|bin| {
            let det: f64 = mass
                .iter()
                .enumerate()
                .filter(|(_, m)| **m > 0.0)
                .map(|(idx, m)| m * diurnal(params, bin, idx as f64 - 12.0))
                .sum::<f64>()
                * weekly(params, bin);
            let noise = if params.noise_sigma > 0.0 {
                dist::log_normal(&mut rng, 0.0, params.noise_sigma)
            } else {
                1.0
            };
            Bps(det * noise)
        })
        .collect()
}

/// Exact single-network series (for small scenes and NetFlow demos):
/// per-bin multiplicative noise on top of the deterministic shape.
pub fn network_series(avg: Bps, city_idx: u16, net_seed: u64, params: &SeriesParams) -> Vec<Bps> {
    let tz = tz_hours(WORLD_CITIES[city_idx as usize].location.lon_deg);
    let mut rng = seed::rng(params.seed, "net-series", net_seed);
    (0..params.bins)
        .map(|bin| {
            let det = avg.0 * diurnal(params, bin, tz) * weekly(params, bin);
            Bps(det * dist::log_normal(&mut rng, 0.0, 0.25))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_types::geo::try_city;

    fn city_idx(name: &str) -> u16 {
        let c = try_city(name).unwrap();
        WORLD_CITIES.iter().position(|w| w.name == c.name).unwrap() as u16
    }

    #[test]
    fn diurnal_peaks_at_local_peak_hour() {
        let p = SeriesParams::default();
        // Madrid is UTC+0 by the 15°-rule (lon −3.7°).
        let series = aggregate_series(
            std::iter::once((Bps(1e9), city_idx("Madrid"))),
            &SeriesParams {
                noise_sigma: 0.0,
                bins: BINS_PER_DAY,
                ..p
            },
        );
        let peak_bin = series
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let peak_hour = peak_bin as f64 * 24.0 / BINS_PER_DAY as f64;
        assert!((peak_hour - 20.0).abs() < 1.0, "peak at {peak_hour}h");
    }

    #[test]
    fn weekends_dip() {
        let p = SeriesParams {
            noise_sigma: 0.0,
            bins: 7 * BINS_PER_DAY,
            ..Default::default()
        };
        let series = aggregate_series(std::iter::once((Bps(1e9), 0)), &p);
        let day_avg = |d: usize| {
            series[d * BINS_PER_DAY..(d + 1) * BINS_PER_DAY]
                .iter()
                .map(|b| b.0)
                .sum::<f64>()
                / BINS_PER_DAY as f64
        };
        assert!(day_avg(5) < day_avg(2) * 0.85, "Saturday below Wednesday");
        assert!(day_avg(6) < day_avg(1) * 0.85, "Sunday below Tuesday");
    }

    #[test]
    fn aggregate_mean_preserves_mass() {
        let p = SeriesParams {
            noise_sigma: 0.0,
            bins: 7 * BINS_PER_DAY,
            ..Default::default()
        };
        let series = aggregate_series(
            vec![
                (Bps(2e9), city_idx("Madrid")),
                (Bps(1e9), city_idx("Tokyo")),
            ]
            .into_iter(),
            &p,
        );
        let mean = series.iter().map(|b| b.0).sum::<f64>() / series.len() as f64;
        // Mean over whole weeks: diurnal integrates to 1, weekly to
        // (5 + 2·0.72)/7 = 0.92.
        let expected = 3e9 * (5.0 + 2.0 * 0.72) / 7.0;
        assert!(
            (mean - expected).abs() / expected < 0.01,
            "{mean} vs {expected}"
        );
    }

    #[test]
    fn different_time_zones_peak_at_different_utc_bins() {
        let p = SeriesParams {
            noise_sigma: 0.0,
            bins: BINS_PER_DAY,
            ..Default::default()
        };
        let peak_of = |city: &str| {
            let s = aggregate_series(std::iter::once((Bps(1e9), city_idx(city))), &p);
            s.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        let madrid = peak_of("Madrid");
        let tokyo = peak_of("Tokyo");
        assert_ne!(madrid, tokyo);
        // Tokyo (UTC+9) peaks ~9h earlier in UTC.
        let diff_hours = ((madrid as i64 - tokyo as i64).rem_euclid(BINS_PER_DAY as i64)) as f64
            * 24.0
            / BINS_PER_DAY as f64;
        assert!((diff_hours - 9.0).abs() < 1.5, "{diff_hours}");
    }

    #[test]
    fn series_is_deterministic() {
        let p = SeriesParams {
            seed: 7,
            ..Default::default()
        };
        let a = aggregate_series(std::iter::once((Bps(1e9), 0)), &p);
        let b = aggregate_series(std::iter::once((Bps(1e9), 0)), &p);
        assert_eq!(a, b);
    }

    #[test]
    fn network_series_has_month_length_and_positive_rates() {
        let p = SeriesParams::default();
        let s = network_series(Bps(1e6), 0, 42, &p);
        assert_eq!(s.len(), 30 * BINS_PER_DAY);
        assert!(s.iter().all(|b| b.0 > 0.0));
    }
}
