//! NetFlow-style records, the 5-minute collector, and 95th-percentile
//! billing.
//!
//! Section 2.1: "transit traffic is metered at 5-minute intervals and billed
//! on a monthly basis, with the charge computed by multiplying a per-Mbps
//! price and the 95th percentile of the 5-minute traffic rates." The
//! collector reproduces the metering, [`percentile_95`] the billing input.

use rp_types::{Bps, NetworkId};
use serde::{Deserialize, Serialize};

/// One flow record as exported by a border router: who talked to whom,
/// which 5-minute bin, how many bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// 5-minute bin index since the start of the measurement month.
    pub bin: u32,
    /// Origin network of the traffic.
    pub src: NetworkId,
    /// Destination network of the traffic.
    pub dst: NetworkId,
    /// Bytes carried in the bin.
    pub bytes: u64,
}

impl FlowRecord {
    /// The record's average rate over its bin.
    pub fn rate(&self) -> Bps {
        Bps(self.bytes as f64 * 8.0 / 300.0)
    }
}

/// Accumulates flow records into per-bin aggregate rates, optionally under
/// packet sampling.
///
/// Production routers export *sampled* NetFlow (classically 1-in-N
/// packets); the collector scales each sampled record back up by N, which
/// is unbiased in expectation but adds sampling noise - one more reason the
/// paper works with 5-minute aggregates rather than individual flows.
#[derive(Debug, Clone)]
pub struct FlowCollector {
    bins: Vec<f64>,
    records: u64,
    sample_n: u32,
}

impl FlowCollector {
    /// A collector covering `bins` five-minute intervals, unsampled.
    pub fn new(bins: usize) -> Self {
        FlowCollector {
            bins: vec![0.0; bins],
            records: 0,
            sample_n: 1,
        }
    }

    /// A collector fed by 1-in-`n` sampled NetFlow: ingested records are
    /// assumed to carry only the sampled bytes and are scaled back by `n`.
    pub fn with_sampling(bins: usize, n: u32) -> Self {
        FlowCollector {
            bins: vec![0.0; bins],
            records: 0,
            sample_n: n.max(1),
        }
    }

    /// The configured sampling divisor (1 = unsampled).
    pub fn sampling(&self) -> u32 {
        self.sample_n
    }

    /// Ingest one record. Records beyond the configured window are dropped
    /// (a real collector rotates files; we simply bound the study window).
    pub fn ingest(&mut self, rec: &FlowRecord) {
        if let Some(slot) = self.bins.get_mut(rec.bin as usize) {
            *slot += rec.rate().0 * self.sample_n as f64;
            self.records += 1;
        }
    }

    /// Aggregate rate series.
    pub fn series(&self) -> Vec<Bps> {
        self.bins.iter().map(|b| Bps(*b)).collect()
    }

    /// Number of records ingested.
    pub fn records(&self) -> u64 {
        self.records
    }
}

/// The 95th percentile of a rate series — the billing rate of the common
/// transit contract. Uses the standard "discard the top 5% of samples, bill
/// the highest remaining" rule. Empty input bills zero.
pub fn percentile_95(series: &[Bps]) -> Bps {
    if series.is_empty() {
        return Bps::ZERO;
    }
    let mut sorted: Vec<f64> = series.iter().map(|b| b.0).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    // Index of the 95th percentile: with n samples, drop ceil(0.05·n) from
    // the top.
    let drop = ((sorted.len() as f64) * 0.05).ceil() as usize;
    let idx = sorted.len().saturating_sub(drop + 1).min(sorted.len() - 1);
    Bps(sorted[idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_rate_conversion() {
        // 300 s × 1 Mbps = 37.5 MB.
        let rec = FlowRecord {
            bin: 0,
            src: NetworkId(1),
            dst: NetworkId(2),
            bytes: 37_500_000,
        };
        assert!((rec.rate().as_mbps() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn collector_accumulates_per_bin() {
        let mut c = FlowCollector::new(3);
        for bin in [0u32, 0, 1] {
            c.ingest(&FlowRecord {
                bin,
                src: NetworkId(1),
                dst: NetworkId(2),
                bytes: 37_500_000,
            });
        }
        // Out-of-window record dropped.
        c.ingest(&FlowRecord {
            bin: 9,
            src: NetworkId(1),
            dst: NetworkId(2),
            bytes: 1,
        });
        let s = c.series();
        assert!((s[0].as_mbps() - 2.0).abs() < 1e-9);
        assert!((s[1].as_mbps() - 1.0).abs() < 1e-9);
        assert_eq!(s[2], Bps::ZERO);
        assert_eq!(c.records(), 3);
    }

    #[test]
    fn sampling_scales_back_up_unbiased() {
        // 1-in-10 sampling: a router that saw 375 MB exports ~37.5 MB of
        // sampled records; the collector reports the original volume.
        let mut sampled = FlowCollector::with_sampling(1, 10);
        let mut exact = FlowCollector::new(1);
        for _ in 0..10 {
            sampled.ingest(&FlowRecord {
                bin: 0,
                src: NetworkId(1),
                dst: NetworkId(2),
                bytes: 3_750_000,
            });
            exact.ingest(&FlowRecord {
                bin: 0,
                src: NetworkId(1),
                dst: NetworkId(2),
                bytes: 37_500_000,
            });
        }
        assert_eq!(sampled.sampling(), 10);
        assert!((sampled.series()[0].0 - exact.series()[0].0).abs() < 1e-6);
    }

    #[test]
    fn percentile_discards_top_five_percent() {
        // 100 samples 1..=100: drop the top 5 (96..100), bill 95.
        let series: Vec<Bps> = (1..=100).map(|i| Bps(i as f64)).collect();
        assert_eq!(percentile_95(&series), Bps(95.0));
    }

    #[test]
    fn percentile_is_insensitive_to_short_spikes() {
        let mut series = vec![Bps(10.0); 1000];
        for slot in series.iter_mut().take(40) {
            *slot = Bps(1e9); // 4% of bins spike
        }
        assert_eq!(percentile_95(&series), Bps(10.0));
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile_95(&[]), Bps::ZERO);
        assert_eq!(percentile_95(&[Bps(7.0)]), Bps(7.0));
        let two = [Bps(1.0), Bps(9.0)];
        assert_eq!(percentile_95(&two), Bps(1.0));
    }
}
