//! Flow-role attribution: origin, destination, transient.
//!
//! Section 4.1 classifies the traffic flows associated with a network as its
//! origin traffic (originated in the network), destination traffic
//! (terminated there), or transient traffic (passing through). Figure 6
//! splits the top offload contributors along exactly this line and finds
//! that for most of them origin/destination traffic dominates transient —
//! i.e. the big contributors are content sources, not intermediaries.

use rp_bgp::RoutingView;
use rp_types::{Bps, NetworkId};
use serde::{Deserialize, Serialize};

/// A network's traffic split by role.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RoleSplit {
    /// Traffic the network originates (inbound direction) or terminates
    /// (outbound direction).
    pub endpoint: Bps,
    /// Traffic that merely passes through the network on its way to/from
    /// the study network.
    pub transient: Bps,
}

/// Attribute endpoint and transient rates along forward paths.
///
/// `rates[i]` is the average rate the study network exchanges with network
/// `i` as the *far endpoint* (origin of inbound traffic or destination of
/// outbound traffic). For every contributing endpoint, each intermediate AS
/// on the forward path accumulates the flow as transient traffic.
///
/// Returns per-network splits indexed by `NetworkId`.
pub fn transient_rates(view: &RoutingView, rates: &[Bps]) -> Vec<RoleSplit> {
    let n = rates.len();
    let mut out = vec![RoleSplit::default(); n];
    for (idx, &rate) in rates.iter().enumerate() {
        if rate.0 <= 0.0 {
            continue;
        }
        let endpoint = NetworkId(idx as u32);
        out[idx].endpoint += rate;
        if let Some(path) = view.forward_path(endpoint) {
            // path = [first hop, ..., endpoint]; everything before the
            // endpoint is an intermediary.
            for hop in &path[..path.len().saturating_sub(1)] {
                out[hop.index()].transient += rate;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_topology::{generate, AsType, TopologyConfig};

    #[test]
    fn endpoints_and_intermediaries_split_correctly() {
        let topo = generate(&TopologyConfig::test_scale(61));
        let vantage = topo.of_type(AsType::Nren).next().unwrap().id;
        let view = RoutingView::new(&topo, vantage);

        // One contributing endpoint with a known rate.
        let endpoint = topo
            .ids()
            .find(|&id| id != vantage && view.path_len(id).map(|l| l >= 3).unwrap_or(false))
            .expect("some multi-hop destination exists");
        let mut rates = vec![Bps::ZERO; topo.len()];
        rates[endpoint.index()] = Bps::from_mbps(100.0);

        let splits = transient_rates(&view, &rates);
        assert_eq!(splits[endpoint.index()].endpoint, Bps::from_mbps(100.0));
        assert_eq!(splits[endpoint.index()].transient, Bps::ZERO);

        let path = view.forward_path(endpoint).unwrap();
        for hop in &path[..path.len() - 1] {
            assert_eq!(
                splits[hop.index()].transient,
                Bps::from_mbps(100.0),
                "{hop}"
            );
            assert_eq!(splits[hop.index()].endpoint, Bps::ZERO);
        }
        // The vantage itself is not on the forward path.
        assert_eq!(splits[vantage.index()].transient, Bps::ZERO);
    }

    #[test]
    fn transit_providers_accumulate_many_flows() {
        let topo = generate(&TopologyConfig::test_scale(61));
        let vantage = topo.of_type(AsType::Nren).next().unwrap().id;
        let view = RoutingView::new(&topo, vantage);
        let rates: Vec<Bps> = topo
            .ids()
            .map(|id| if id != vantage { Bps(1.0) } else { Bps::ZERO })
            .collect();
        let splits = transient_rates(&view, &rates);
        // The vantage's transit providers carry nearly all flows.
        let max_transient = topo
            .providers(vantage)
            .iter()
            .map(|p| splits[p.index()].transient.0)
            .fold(0.0, f64::max);
        assert!(
            max_transient > topo.len() as f64 * 0.2,
            "a transit provider carries a big share: {max_transient}"
        );
    }

    #[test]
    fn zero_rates_produce_zero_splits() {
        let topo = generate(&TopologyConfig::test_scale(61));
        let vantage = topo.of_type(AsType::Nren).next().unwrap().id;
        let view = RoutingView::new(&topo, vantage);
        let splits = transient_rates(&view, &vec![Bps::ZERO; topo.len()]);
        assert!(splits
            .iter()
            .all(|s| s.endpoint == Bps::ZERO && s.transient == Bps::ZERO));
    }
}
