//! Per-network contributions to the study network's transit-provider
//! traffic.
//!
//! Figure 5a plots, for 29,570 networks, the average rate each contributes
//! as an origin of inbound traffic or destination of outbound traffic,
//! ranked in decreasing order: a few networks near the Gbps mark, a
//! power-law body, and a distinctive *bend toward a faster decline* around
//! rank 20,000 / ~100 bps. This module reproduces that curve:
//!
//! - **who contributes**: every network the study network reaches through a
//!   transit provider (peered networks, GÉANT partners, and home-IXP
//!   co-members exchange traffic off the transit links and therefore never
//!   appear in the transit dataset);
//! - **who is big**: a type-aware heavy-tailed weight puts CDNs and content
//!   networks at the top for inbound traffic (the paper's top contributors
//!   include Microsoft, Yahoo, and CDNs) — the weight orders networks, the
//!   rank-size curve assigns magnitudes;
//! - **the curve**: `A·rank^(-α)` up to a knee, then exponential decay —
//!   the bend.

use rp_bgp::RoutingView;
use rp_topology::{AsType, Topology};
use rp_types::geo::Continent;
use rp_types::{dist, seed, Bps, NetworkId};
use serde::{Deserialize, Serialize};

/// Traffic-model configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Seed for the model's random draws.
    pub seed: u64,
    /// Average total inbound transit rate (paper's figure 5b: RedIRIS
    /// inbound transit averages a handful of Gbps, peaking near 10).
    pub total_inbound: Bps,
    /// Average total outbound transit rate.
    pub total_outbound: Bps,
    /// Power-law slope of the rank-size body.
    pub alpha: f64,
    /// Fraction of contributors before the bend (paper: ~20,000 of 29,570).
    pub knee_fraction: f64,
    /// How far below the knee rate the last-ranked contributor sits.
    pub tail_drop: f64,
    /// Extra per-continent affinity multipliers beyond the distance decay —
    /// e.g. the strong Spain ↔ Latin-America traffic relationship that makes
    /// Terremark a top offload venue for RedIRIS despite the distance.
    pub continent_boosts: Vec<(Continent, f64)>,
    /// Per-country dampers/boosts layered on top (the Spain ↔ Spanish-
    /// America tie is linguistic: Brazil participates far less).
    pub country_boosts: Vec<(String, f64)>,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 0,
            total_inbound: Bps::from_gbps(6.5),
            total_outbound: Bps::from_gbps(3.2),
            alpha: 0.85,
            knee_fraction: 0.67,
            tail_drop: 40.0,
            continent_boosts: vec![(Continent::SouthAmerica, 6.0)],
            country_boosts: vec![("Brazil".to_string(), 0.4), ("Russia".to_string(), 0.25)],
        }
    }
}

/// Average per-network contributions, indexed by `NetworkId`.
/// Non-contributors (the vantage itself and networks reached off-transit)
/// hold zero.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Contributions {
    /// Average inbound rate the study network receives from each origin.
    pub inbound: Vec<Bps>,
    /// Average outbound rate the study network sends to each destination.
    pub outbound: Vec<Bps>,
}

impl Contributions {
    /// Total inbound transit traffic.
    pub fn total_inbound(&self) -> Bps {
        self.inbound.iter().copied().sum()
    }

    /// Total outbound transit traffic.
    pub fn total_outbound(&self) -> Bps {
        self.outbound.iter().copied().sum()
    }

    /// Networks with a nonzero contribution in either direction — the
    /// paper's "29,570 networks that are origins of the inbound traffic or
    /// destinations of the outbound traffic".
    pub fn contributors(&self) -> usize {
        self.inbound
            .iter()
            .zip(&self.outbound)
            .filter(|(i, o)| i.0 > 0.0 || o.0 > 0.0)
            .count()
    }

    /// Contribution of one network.
    pub fn of(&self, id: NetworkId) -> (Bps, Bps) {
        (self.inbound[id.index()], self.outbound[id.index()])
    }
}

/// Outbound-destination weight scale by type: where the study network's
/// own bytes go. An NREN's outbound traffic (served content, research data)
/// terminates overwhelmingly in eyeball networks.
fn outbound_scale(kind: AsType) -> f64 {
    match kind {
        AsType::Access => 8.0,
        AsType::Transit => 2.0,
        AsType::Hosting => 1.5,
        AsType::Content => 1.0,
        AsType::Enterprise => 1.0,
        AsType::Tier1 => 3.0,
        AsType::Nren => 1.0,
        AsType::Cdn => 0.5,
    }
}

/// Inbound-origin weight scale by type: who sends eyeball-bound bytes.
fn inbound_scale(kind: AsType) -> f64 {
    match kind {
        AsType::Cdn => 25.0,
        AsType::Content => 12.0,
        AsType::Hosting => 5.0,
        AsType::Transit => 2.5,
        AsType::Access => 0.8,
        // Tier-1s originate sizeable service traffic of their own
        // (backbone-hosted services, aggregated customer-origin flows the
        // path attribution credits to them); since tier-1s are excluded
        // peer candidates, this mass is never offloadable — one reason the
        // paper's maximal offload stops near 25-33%.
        AsType::Tier1 => 12.0,
        AsType::Nren => 1.0,
        AsType::Enterprise => 0.15,
    }
}

/// Rank-size curve with a knee: `rank^(-alpha)` through the body, then
/// exponential decay so the tail "bends toward a faster decline"
/// (figure 5a). Returns an unnormalized rate for 1-based `rank` of `n`.
fn rank_curve(rank: usize, n: usize, cfg: &TrafficConfig) -> f64 {
    debug_assert!(rank >= 1 && rank <= n);
    let knee = ((n as f64) * cfg.knee_fraction).max(1.0);
    let body = |r: f64| r.powf(-cfg.alpha);
    if (rank as f64) <= knee {
        body(rank as f64)
    } else {
        // Decay from the knee rate down to knee_rate / tail_drop at rank n.
        let tail_len = (n as f64 - knee).max(1.0);
        let lambda = cfg.tail_drop.ln() / tail_len;
        body(knee) * (-lambda * (rank as f64 - knee)).exp()
    }
}

/// Build per-network average contributions for `vantage` under routing
/// `view`.
pub fn contributions(topo: &Topology, view: &RoutingView, cfg: &TrafficConfig) -> Contributions {
    let _sp = rp_obs::span("traffic.contributions");
    let n = topo.len();
    let vantage = view.vantage();

    // Transit-reached networks are the only possible contributors.
    let eligible: Vec<NetworkId> = topo
        .ids()
        .filter(|&id| id != vantage && view.uses_transit(topo, id))
        .collect();

    // Heavy-tailed, type-aware, geography-aware ordering weight: a study
    // network's transit traffic skews toward its own region (RedIRIS
    // exchanges most traffic with European and transatlantic networks, with
    // a visible Latin-American component — the Terremark effect of
    // figure 7).
    let vantage_loc = topo.home_city(vantage).location;
    let mut rng = seed::rng(cfg.seed, "traffic-weights", 0);
    let mut in_weighted: Vec<(f64, NetworkId)> = eligible
        .iter()
        .map(|&id| {
            let home = topo.home_city(id);
            let km = home.location.distance_km(vantage_loc);
            let boost = cfg
                .continent_boosts
                .iter()
                .find(|(c, _)| *c == home.continent)
                .map(|(_, b)| *b)
                .unwrap_or(1.0)
                * cfg
                    .country_boosts
                    .iter()
                    .find(|(c, _)| c == home.country)
                    .map(|(_, b)| *b)
                    .unwrap_or(1.0);
            let affinity = (1.0 + 1.5 * (-km / 3_000.0).exp()) * boost;
            // Prominence carries the heavy tail so the biggest senders are
            // the same networks the membership model puts at the exchanges;
            // a mild independent factor keeps the coupling imperfect.
            let w = affinity
                * inbound_scale(topo.node(id).kind)
                * topo.node(id).prominence
                * dist::pareto(&mut rng, 1.0, 3.0).min(8.0);
            (w, id)
        })
        .collect();
    // Outbound order: same prominence and affinity drivers, but weighted by
    // who *receives* (eyeballs), plus a lognormal reshuffle so the coupling
    // with inbound stays imperfect.
    let mut out_weighted: Vec<(f64, NetworkId)> = in_weighted
        .iter()
        .map(|(w, id)| {
            let node = topo.node(*id);
            let retype = outbound_scale(node.kind) / inbound_scale(node.kind);
            (w * retype * dist::log_normal(&mut rng, 0.0, 0.9), *id)
        })
        .collect();

    let sort_desc = |v: &mut Vec<(f64, NetworkId)>| {
        v.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1)));
    };
    sort_desc(&mut in_weighted);
    sort_desc(&mut out_weighted);

    let assign = |ranked: &[(f64, NetworkId)], total: Bps| -> Vec<Bps> {
        let m = ranked.len();
        let raw: Vec<f64> = (1..=m).map(|r| rank_curve(r, m, cfg)).collect();
        let sum: f64 = raw.iter().sum();
        let mut rates = vec![Bps::ZERO; n];
        if sum > 0.0 {
            let scale = total.0 / sum;
            for ((_, id), r) in ranked.iter().zip(&raw) {
                rates[id.index()] = Bps(r * scale);
            }
        }
        rates
    };

    Contributions {
        inbound: assign(&in_weighted, cfg.total_inbound),
        outbound: assign(&out_weighted, cfg.total_outbound),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_topology::{generate, TopologyConfig};

    fn setup() -> (Topology, RoutingView, Contributions) {
        let topo = generate(&TopologyConfig::test_scale(51));
        let vantage = topo.of_type(AsType::Nren).next().unwrap().id;
        let view = RoutingView::new(&topo, vantage);
        let contrib = contributions(
            &topo,
            &view,
            &TrafficConfig {
                seed: 52,
                ..Default::default()
            },
        );
        (topo, view, contrib)
    }

    #[test]
    fn totals_hit_configured_targets() {
        let (_, _, c) = setup();
        assert!((c.total_inbound().as_gbps() - 6.5).abs() < 1e-6);
        assert!((c.total_outbound().as_gbps() - 3.2).abs() < 1e-6);
    }

    #[test]
    fn only_transit_reached_networks_contribute() {
        let (topo, view, c) = setup();
        for id in topo.ids() {
            let (i, o) = c.of(id);
            if id == view.vantage() || !view.uses_transit(&topo, id) {
                assert_eq!(i, Bps::ZERO);
                assert_eq!(o, Bps::ZERO);
            } else {
                assert!(i.0 > 0.0 && o.0 > 0.0);
            }
        }
    }

    #[test]
    fn rank_curve_is_monotone_with_a_bend() {
        let cfg = TrafficConfig::default();
        let n = 10_000;
        let rates: Vec<f64> = (1..=n).map(|r| rank_curve(r, n, &cfg)).collect();
        for w in rates.windows(2) {
            assert!(w[1] <= w[0] + 1e-15, "monotone decreasing");
        }
        // The tail declines faster (log slope steeper after the knee).
        let knee = (n as f64 * cfg.knee_fraction) as usize;
        let slope = |a: usize, b: usize| (rates[b].ln() - rates[a].ln()) / ((b - a) as f64);
        let body_slope = slope(knee / 2, knee - 1);
        let tail_slope = slope(knee + 1, n - 1);
        assert!(
            tail_slope < body_slope,
            "tail {tail_slope} must fall faster than body {body_slope}"
        );
    }

    #[test]
    fn cdns_and_content_dominate_the_top_of_inbound() {
        let (topo, _, c) = setup();
        let mut ranked: Vec<(Bps, NetworkId)> =
            topo.ids().map(|id| (c.inbound[id.index()], id)).collect();
        ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let top10_content = ranked[..10]
            .iter()
            .filter(|(_, id)| {
                matches!(
                    topo.node(*id).kind,
                    AsType::Cdn | AsType::Content | AsType::Hosting
                )
            })
            .count();
        assert!(
            top10_content >= 5,
            "{top10_content}/10 content-ish at the top"
        );
    }

    #[test]
    fn contributions_are_deterministic() {
        let topo = generate(&TopologyConfig::test_scale(51));
        let vantage = topo.of_type(AsType::Nren).next().unwrap().id;
        let view = RoutingView::new(&topo, vantage);
        let cfg = TrafficConfig {
            seed: 99,
            ..Default::default()
        };
        let a = contributions(&topo, &view, &cfg);
        let b = contributions(&topo, &view, &cfg);
        assert_eq!(a.inbound, b.inbound);
        assert_eq!(a.outbound, b.outbound);
    }

    #[test]
    fn contributor_count_matches_transit_reach() {
        let (topo, view, c) = setup();
        let transit_reached = topo
            .ids()
            .filter(|&id| id != view.vantage() && view.uses_transit(&topo, id))
            .count();
        assert_eq!(c.contributors(), transit_reached);
    }
}
