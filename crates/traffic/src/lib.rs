#![warn(missing_docs)]

//! # rp-traffic
//!
//! The NetFlow substrate: a statistically faithful stand-in for the one
//! month of 5-minute-granularity traffic data the paper collected at the
//! border routers of RedIRIS (section 4.1).
//!
//! Four pieces:
//!
//! - [`model`] — per-network average contributions to the study network's
//!   transit-provider traffic: a rank-size curve with the power-law body,
//!   the figure 5a "bend" near rank ~20,000 / ~100 bps, and type-aware
//!   placement (CDNs and content networks at the top, enterprises in the
//!   tail);
//! - [`series`] — the temporal dimension: diurnal cycles phased by each
//!   network's longitude (time zone), weekday/weekend modulation, and
//!   multiplicative noise, aggregated exactly by phase bucket so a month of
//!   29k-network traffic aggregates in milliseconds (figure 5b);
//! - [`netflow`] — flow records, the 5-minute collector, and 95th-percentile
//!   billing (the charge model of section 2.1);
//! - [`roles`] — origin / destination / transient attribution along
//!   forward AS paths (figure 6).

pub mod model;
pub mod netflow;
pub mod roles;
pub mod series;

pub use model::{contributions, Contributions, TrafficConfig};
pub use netflow::{percentile_95, FlowCollector, FlowRecord};
pub use roles::{transient_rates, RoleSplit};
pub use series::{aggregate_series, SeriesParams, BINS_PER_DAY};
