//! The registry — what the measurement campaign is allowed to know.
//!
//! Section 3.1: "IXP members do not typically announce the IP addresses of
//! these interfaces via BGP. To determine the IP addresses of the targeted
//! interfaces, we look up the addresses on the websites of PeeringDB, PCH,
//! and the IXP itself," and network identification maps addresses to ASNs
//! "through a combination of looking up PeeringDB, using the IXPs' websites
//! and LG servers, and issuing reverse DNS queries."
//!
//! `Registry` is that lookup surface derived from the scene: per studied
//! IXP, the *listed* addresses (stale phantoms included) and their ASN
//! mappings (possibly missing, possibly changing mid-campaign). The
//! detection pipeline consumes only this plus ping replies — never the
//! scene's ground truth.

use crate::model::IxpScene;
use rp_topology::Topology;
use rp_types::{Asn, IxpId};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// One listed address at one IXP.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ListingEntry {
    /// The listed interface address.
    pub ip: Ipv4Addr,
    /// ASN mappings observed over the campaign: empty when no source
    /// identifies the address; two entries when the mapping changed
    /// mid-campaign (the ASN-change filter discards such interfaces).
    pub asns: Vec<Asn>,
}

impl ListingEntry {
    /// The mapping in effect during campaign `phase` (0 = first half,
    /// 1 = second half).
    pub fn asn_in_phase(&self, phase: usize) -> Option<Asn> {
        match self.asns.len() {
            0 => None,
            1 => Some(self.asns[0]),
            _ => Some(self.asns[phase.min(self.asns.len() - 1)]),
        }
    }

    /// True when the ASN mapping is unstable over the campaign. Multiple
    /// sources repeating the *same* mapping is agreement, not a change —
    /// only distinct consecutive mappings count.
    pub fn asn_changed(&self) -> bool {
        self.asns.windows(2).any(|w| w[0] != w[1])
    }
}

/// Registry listings per IXP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Registry {
    listings: Vec<Vec<ListingEntry>>,
}

impl Registry {
    /// Derive the registry from a scene: listed interfaces at IXPs that have
    /// looking-glass servers.
    pub fn from_scene(scene: &IxpScene, topo: &Topology) -> Registry {
        let _sp = rp_obs::span("ixp.registry.crawl");
        let listings = scene
            .ixps
            .iter()
            .map(|ixp| {
                if ixp.meta.lg.is_empty() {
                    return Vec::new();
                }
                ixp.members
                    .iter()
                    .filter(|m| m.listing.listed)
                    .map(|m| {
                        let asns = if !m.listing.identifiable {
                            Vec::new()
                        } else if m.listing.asn_change {
                            // The stale mapping points at a different real
                            // network (neighboring id keeps it deterministic).
                            let other = (m.network.index() + 1) % topo.len();
                            vec![topo.node(m.network).asn, topo.ases[other].asn]
                        } else {
                            vec![topo.node(m.network).asn]
                        };
                        ListingEntry { ip: m.ip, asns }
                    })
                    .collect()
            })
            .collect();
        Registry { listings }
    }

    /// Listed addresses at `ixp` (empty for IXPs without looking glasses).
    pub fn entries(&self, ixp: IxpId) -> &[ListingEntry] {
        &self.listings[ixp.index()]
    }

    /// Total listed addresses across all IXPs.
    pub fn total_entries(&self) -> usize {
        self.listings.iter().map(|l| l.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::STUDIED_22;
    use crate::membership::{build_scene, SceneConfig};
    use rp_topology::{generate, TopologyConfig};

    fn registry() -> (Topology, IxpScene, Registry) {
        let topo = generate(&TopologyConfig::test_scale(41));
        let scene = build_scene(&topo, STUDIED_22, &SceneConfig::test_scale(42));
        let reg = Registry::from_scene(&scene, &topo);
        (topo, scene, reg)
    }

    #[test]
    fn registry_covers_exactly_the_listed_interfaces() {
        let (_, scene, reg) = registry();
        for ixp in &scene.ixps {
            let listed = ixp.members.iter().filter(|m| m.listing.listed).count();
            assert_eq!(reg.entries(ixp.id).len(), listed, "{}", ixp.meta.acronym);
        }
    }

    #[test]
    fn identified_entries_map_to_owner_asn() {
        let (topo, scene, reg) = registry();
        for ixp in &scene.ixps {
            for m in ixp
                .members
                .iter()
                .filter(|m| m.listing.listed && m.listing.identifiable)
            {
                let entry = reg
                    .entries(ixp.id)
                    .iter()
                    .find(|e| e.ip == m.ip)
                    .expect("listed interface has an entry");
                assert_eq!(entry.asn_in_phase(0), Some(topo.node(m.network).asn));
                if m.listing.asn_change {
                    assert!(entry.asn_changed());
                    assert_ne!(entry.asn_in_phase(0), entry.asn_in_phase(1));
                } else {
                    assert!(!entry.asn_changed());
                    assert_eq!(entry.asn_in_phase(0), entry.asn_in_phase(1));
                }
            }
        }
    }

    #[test]
    fn unidentifiable_entries_have_no_asn() {
        let (_, scene, reg) = registry();
        let mut found = 0;
        for ixp in &scene.ixps {
            for m in ixp
                .members
                .iter()
                .filter(|m| m.listing.listed && !m.listing.identifiable)
            {
                let entry = reg.entries(ixp.id).iter().find(|e| e.ip == m.ip).unwrap();
                assert_eq!(entry.asn_in_phase(0), None);
                found += 1;
            }
        }
        assert!(found > 0, "some interfaces must be unidentifiable");
    }

    #[test]
    fn phase_indexing_is_safe_beyond_bounds() {
        let e = ListingEntry {
            ip: "10.0.2.2".parse().unwrap(),
            asns: vec![Asn(5)],
        };
        assert_eq!(e.asn_in_phase(7), Some(Asn(5)));
    }
}
