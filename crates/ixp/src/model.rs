//! The IXP scene model — ground truth for the measurement studies.

use crate::dataset::IxpMeta;
use rp_types::geo::{city, City};
use rp_types::{IxpId, NetworkId};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Operator of a looking-glass server at an IXP. The two operators differ in
/// how many ping requests one HTML query triggers (section 3.1: RIPE NCC
/// issues 3, PCH issues 5) and in the per-interface reply caps the paper
/// reports (21 and 54 respectively).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LgOperator {
    /// Packet Clearing House (5 pings per query).
    Pch,
    /// RIPE NCC (3 pings per query).
    RipeNcc,
}

impl LgOperator {
    /// Ping requests issued per HTML query.
    pub fn pings_per_query(self) -> u32 {
        match self {
            LgOperator::Pch => 5,
            LgOperator::RipeNcc => 3,
        }
    }

    /// Maximum ping replies the paper collected from any interface via this
    /// operator's servers.
    pub fn max_replies(self) -> u32 {
        match self {
            LgOperator::Pch => 54,
            LgOperator::RipeNcc => 21,
        }
    }
}

/// How a member interface reaches the IXP fabric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Access {
    /// The member has IP presence at the IXP location: a colo cross-connect
    /// or metro span, sub-millisecond to ~1 ms one way.
    Direct {
        /// One-way access delay in milliseconds.
        colo_delay_ms: f64,
        /// Which IXP site the port is on.
        site: u8,
    },
    /// The member reaches the fabric through a remote-peering provider's
    /// layer-2 pseudowire from its home metro.
    Remote {
        /// Index into the scene's provider table.
        provider: u8,
        /// City index (into [`rp_types::geo::WORLD_CITIES`]) where the
        /// member's router actually sits.
        origin_city: u16,
        /// One-way delay of the member's local access tail, in ms.
        access_delay_ms: f64,
        /// Which IXP site the provider's port is on.
        site: u8,
    },
}

impl Access {
    /// True for remotely peering attachments — the scene-side ground truth
    /// the detector is validated against.
    pub fn is_remote(&self) -> bool {
        matches!(self, Access::Remote { .. })
    }

    /// Site of the fabric port.
    pub fn site(&self) -> u8 {
        match *self {
            Access::Direct { site, .. } => site,
            Access::Remote { site, .. } => site,
        }
    }
}

/// Responder pathologies of one probed interface (section 3.1's measurement
/// hazards, each the target of one filter).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponderProfile {
    /// Initial TTL of generated replies (64/255 typical; 128/32 infrequent).
    pub initial_ttl: u8,
    /// Operating-system change mid-campaign: (fraction of the campaign at
    /// which it happens, new initial TTL).
    pub ttl_change: Option<(f64, u8)>,
    /// Drops echo requests silently.
    pub blackhole: bool,
    /// The listed address actually sits one IP hop behind the fabric-facing
    /// device (stale registry data).
    pub extra_hop: bool,
    /// The listed address has no device at all.
    pub absent: bool,
    /// The member's access port is saturated: bound of the extra uniform
    /// queueing delay per traversal, in ms; `0.0` = healthy.
    pub congested_extra_ms: f64,
    /// Echo-request loss probability at the saturated port (sparse replies
    /// are what make a congested interface's minimum RTT untrustworthy).
    pub congested_drop: f64,
}

impl Default for ResponderProfile {
    fn default() -> Self {
        ResponderProfile {
            initial_ttl: 64,
            ttl_change: None,
            blackhole: false,
            extra_hop: false,
            absent: false,
            congested_extra_ms: 0.0,
            congested_drop: 0.0,
        }
    }
}

/// Registry-side facts about one interface listing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ListingInfo {
    /// Whether the address appears in any registry source at all. Unlisted
    /// interfaces exist (and peer, and carry traffic) but are invisible to
    /// the probing campaign — the paper's registries covered only part of
    /// some IXPs' memberships (e.g. MSK-IX: 367 members, 218 analyzed
    /// interfaces).
    pub listed: bool,
    /// Whether PeeringDB / the IXP website / reverse DNS can map this
    /// address to an ASN at all.
    pub identifiable: bool,
    /// The ASN the registry maps the address to changes mid-campaign
    /// (the ASN-change filter's target).
    pub asn_change: bool,
}

/// One member IP interface in one IXP subnet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemberInterface {
    /// The owning network.
    pub network: NetworkId,
    /// The interface's address in the IXP subnet.
    pub ip: Ipv4Addr,
    /// Attachment ground truth.
    pub access: Access,
    /// Responder pathologies.
    pub profile: ResponderProfile,
    /// Registry view.
    pub listing: ListingInfo,
}

/// One IXP with its membership.
#[derive(Debug, Clone, Serialize)]
pub struct IxpInstance {
    /// Scene-wide IXP id.
    pub id: IxpId,
    /// Static dataset metadata.
    pub meta: IxpMeta,
    /// City indices of the IXP's sites; `sites[0]` is the main site where
    /// `meta.city` says it is. Federated IXPs have a distant second site.
    pub sites: Vec<u16>,
    /// Member interfaces, in subnet slot order (`ip_for_slot`).
    pub members: Vec<MemberInterface>,
}

impl IxpInstance {
    /// The main-site city.
    pub fn city(&self) -> City {
        city(self.meta.city)
    }

    /// Number of distinct member networks.
    pub fn member_networks(&self) -> usize {
        let mut nets: Vec<NetworkId> = self.members.iter().map(|m| m.network).collect();
        nets.sort_unstable();
        nets.dedup();
        nets.len()
    }

    /// Distinct member networks.
    pub fn member_network_ids(&self) -> Vec<NetworkId> {
        let mut nets: Vec<NetworkId> = self.members.iter().map(|m| m.network).collect();
        nets.sort_unstable();
        nets.dedup();
        nets
    }

    /// Ground-truth count of remotely peering interfaces.
    pub fn remote_interfaces(&self) -> usize {
        self.members.iter().filter(|m| m.access.is_remote()).count()
    }

    /// The IXP-subnet address of interface slot `slot`. Each IXP owns
    /// `10.<id>.0.0/16`-style space; slots map into it leaving the first
    /// octet pairs for infrastructure (LG servers, route servers).
    pub fn ip_for_slot(id: IxpId, slot: u32) -> Ipv4Addr {
        debug_assert!(id.0 < 250, "subnet scheme holds 250 IXPs");
        debug_assert!(slot < 60_000, "slot {slot} too large");
        Ipv4Addr::new(
            10,
            id.0 as u8,
            (2 + slot / 250) as u8,
            (2 + slot % 250) as u8,
        )
    }

    /// Address of the `k`-th LG server of this IXP.
    pub fn lg_ip(id: IxpId, k: u32) -> Ipv4Addr {
        Ipv4Addr::new(10, id.0 as u8, 0, (10 + k) as u8)
    }

    /// Address of the IXP's route server (used by the TorIX-style
    /// validation cross-check).
    pub fn route_server_ip(id: IxpId) -> Ipv4Addr {
        Ipv4Addr::new(10, id.0 as u8, 0, 1)
    }
}

/// A full scene: IXPs plus the provider table the `Access::Remote` entries
/// index into.
#[derive(Debug, Clone, Serialize)]
pub struct IxpScene {
    /// All IXPs, indexed by [`IxpId`]. Instances are reference-counted so
    /// forked scenes share every IXP they have not touched: cloning the
    /// scene bumps 65 refcounts instead of copying tens of thousands of
    /// member rows, and [`IxpScene::ixp_mut`] is the copy-on-write seam.
    pub ixps: Vec<Arc<IxpInstance>>,
    /// The remote-peering provider table `Access::Remote` indexes into.
    pub providers: Vec<crate::provider::RemotePeeringProvider>,
}

impl IxpScene {
    /// The IXP with the given id.
    pub fn ixp(&self, id: IxpId) -> &IxpInstance {
        &self.ixps[id.index()]
    }

    /// Mutable access to one IXP instance — the copy-on-write seam. If the
    /// instance is shared with another scene (a fork parent or sibling),
    /// the first mutation clones that one instance; subsequent mutations
    /// are in place. Unmutated instances stay shared.
    pub fn ixp_mut(&mut self, id: IxpId) -> &mut IxpInstance {
        Arc::make_mut(&mut self.ixps[id.index()])
    }

    /// True when this scene and `other` share the same allocation for
    /// `id`'s instance (i.e. neither side has written to it since the
    /// fork). Lets tests prove copy-on-write actually shares.
    pub fn shares_ixp_with(&self, other: &IxpScene, id: IxpId) -> bool {
        Arc::ptr_eq(&self.ixps[id.index()], &other.ixps[id.index()])
    }

    /// Iterate over the IXPs the section 3 study probes (those with at least
    /// one looking-glass server).
    pub fn studied(&self) -> impl Iterator<Item = &IxpInstance> {
        self.ixps
            .iter()
            .filter(|x| !x.meta.lg.is_empty())
            .map(|x| &**x)
    }

    /// All IXPs a given network belongs to.
    pub fn ixps_of(&self, network: NetworkId) -> Vec<IxpId> {
        self.ixps
            .iter()
            .filter(|x| x.members.iter().any(|m| m.network == network))
            .map(|x| x.id)
            .collect()
    }

    /// Total interface count across all IXPs.
    pub fn total_interfaces(&self) -> usize {
        self.ixps.iter().map(|x| x.members.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lg_operator_parameters_match_paper() {
        assert_eq!(LgOperator::Pch.pings_per_query(), 5);
        assert_eq!(LgOperator::RipeNcc.pings_per_query(), 3);
        assert_eq!(LgOperator::Pch.max_replies(), 54);
        assert_eq!(LgOperator::RipeNcc.max_replies(), 21);
    }

    #[test]
    fn slot_addresses_are_unique_and_disjoint_from_infrastructure() {
        let mut seen = std::collections::HashSet::new();
        for ixp in 0..22u32 {
            seen.insert(IxpInstance::lg_ip(IxpId(ixp), 0));
            seen.insert(IxpInstance::lg_ip(IxpId(ixp), 1));
            seen.insert(IxpInstance::route_server_ip(IxpId(ixp)));
            for slot in 0..800 {
                seen.insert(IxpInstance::ip_for_slot(IxpId(ixp), slot));
            }
        }
        assert_eq!(seen.len(), 22 * 803);
    }

    #[test]
    fn access_ground_truth() {
        let direct = Access::Direct {
            colo_delay_ms: 0.4,
            site: 0,
        };
        let remote = Access::Remote {
            provider: 0,
            origin_city: 3,
            access_delay_ms: 0.3,
            site: 1,
        };
        assert!(!direct.is_remote());
        assert!(remote.is_remote());
        assert_eq!(direct.site(), 0);
        assert_eq!(remote.site(), 1);
    }
}
