//! Remote-peering providers.
//!
//! Section 2.3: "the remote-peering provider delivers traffic between the
//! layer-2 switching infrastructure of the IXP and the remote interface of
//! the customer," maintaining equipment at the IXP on the customer's behalf.
//! The paper names IX Reach and Atrato IP Networks as examples and notes
//! traditional transit providers also sell the service.
//!
//! A provider here is a named set of points of presence. A customer's
//! pseudowire runs `home metro → nearest provider PoP → IXP`, so the
//! detour through the provider's footprint is part of the measured RTT —
//! one reason the paper's delay-to-distance mapping is conservative.

use rp_types::geo::{city, GeoPoint, WORLD_CITIES};
use serde::{Deserialize, Serialize};

/// A layer-2 remote-peering provider.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RemotePeeringProvider {
    /// Provider name.
    pub name: String,
    /// City indices (into [`WORLD_CITIES`]) of the provider's PoPs.
    pub pops: Vec<u16>,
}

impl RemotePeeringProvider {
    /// Build a provider from city names. Panics on unknown cities (the
    /// default table uses literals).
    pub fn new(name: &str, pop_cities: &[&str]) -> Self {
        let pops = pop_cities
            .iter()
            .map(|c| {
                let target = city(c);
                WORLD_CITIES
                    .iter()
                    .position(|w| w.name == target.name)
                    .expect("city comes from the database") as u16
            })
            .collect();
        RemotePeeringProvider {
            name: name.to_string(),
            pops,
        }
    }

    /// Index of the PoP nearest to `from` (ties broken by table order).
    pub fn nearest_pop(&self, from: GeoPoint) -> u16 {
        *self
            .pops
            .iter()
            .min_by(|a, b| {
                let da = WORLD_CITIES[**a as usize].location.distance_km(from);
                let db = WORLD_CITIES[**b as usize].location.distance_km(from);
                da.partial_cmp(&db).expect("distances are finite")
            })
            .expect("providers have at least one PoP")
    }

    /// One-way pseudowire delay in milliseconds for a customer at
    /// `origin` reaching an IXP at `ixp`: origin → nearest PoP → IXP.
    pub fn pseudowire_delay_ms(&self, origin: GeoPoint, ixp: GeoPoint) -> f64 {
        let pop = WORLD_CITIES[self.nearest_pop(origin) as usize].location;
        origin.fiber_delay_ms(pop) + pop.fiber_delay_ms(ixp)
    }
}

/// The scenario's provider table: two specialist layer-2 carriers modeled on
/// the companies the paper names, plus a transit provider reselling its
/// footprint — reflecting the paper's note that transit providers leverage
/// their delivery expertise to act as remote-peering intermediaries.
pub fn default_providers() -> Vec<RemotePeeringProvider> {
    vec![
        RemotePeeringProvider::new(
            "LayerTwoReach", // IX Reach-like: broad European + US footprint
            &[
                "London",
                "Amsterdam",
                "Frankfurt",
                "Paris",
                "Madrid",
                "Milan",
                "Vienna",
                "Warsaw",
                "Stockholm",
                "New York",
                "Miami",
                "Los Angeles",
                "Toronto",
                "Hong Kong",
                "Singapore",
                "Tokyo",
            ],
        ),
        RemotePeeringProvider::new(
            "AtratoWire", // Atrato-like: European core + intercontinental
            &[
                "Amsterdam",
                "Frankfurt",
                "London",
                "Budapest",
                "Prague",
                "Zurich",
                "Istanbul",
                "Moscow",
                "New York",
                "Sao Paulo",
                "Johannesburg",
                "Dubai",
            ],
        ),
        RemotePeeringProvider::new(
            "GlobalTransitL2", // transit provider selling pseudowires
            &[
                "New York",
                "Chicago",
                "Dallas",
                "Seattle",
                "Miami",
                "Sao Paulo",
                "Buenos Aires",
                "Santiago",
                "London",
                "Amsterdam",
                "Frankfurt",
                "Hong Kong",
                "Tokyo",
                "Seoul",
                "Sydney",
                "Mumbai",
                "Lagos",
                "Nairobi",
                "Cairo",
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_table_has_valid_pops() {
        let providers = default_providers();
        assert_eq!(providers.len(), 3);
        for p in &providers {
            assert!(!p.pops.is_empty());
            for &pop in &p.pops {
                assert!((pop as usize) < WORLD_CITIES.len());
            }
        }
    }

    #[test]
    fn nearest_pop_is_actually_nearest() {
        let p = RemotePeeringProvider::new("t", &["London", "Tokyo", "Miami"]);
        let near_tokyo = city("Seoul").location;
        let pop = p.nearest_pop(near_tokyo);
        assert_eq!(WORLD_CITIES[pop as usize].name, "Tokyo");
    }

    #[test]
    fn pseudowire_delay_exceeds_direct_fiber() {
        // Routing via a PoP can only add distance.
        let p = RemotePeeringProvider::new("t", &["Frankfurt"]);
        let origin = city("Madrid").location;
        let ixp = city("Amsterdam").location;
        let via = p.pseudowire_delay_ms(origin, ixp);
        let direct = origin.fiber_delay_ms(ixp);
        assert!(via >= direct, "{via} < {direct}");
    }

    #[test]
    fn same_city_pop_adds_nothing() {
        let p = RemotePeeringProvider::new("t", &["Madrid"]);
        let origin = city("Madrid").location;
        let ixp = city("Amsterdam").location;
        let via = p.pseudowire_delay_ms(origin, ixp);
        let direct = origin.fiber_delay_ms(ixp);
        assert!((via - direct).abs() < 1e-9);
    }
}
