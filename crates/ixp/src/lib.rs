#![warn(missing_docs)]

//! # rp-ixp
//!
//! The IXP substrate: everything the paper reads off PeeringDB, PCH,
//! Euro-IX, and IXP websites, rebuilt as a generated — but statistically
//! faithful — dataset over an [`rp_topology::Topology`].
//!
//! The crate produces an [`IxpScene`]: a declarative description of every
//! IXP (city, sites, looking-glass servers), every member interface (its
//! address in the IXP subnet, whether it attaches directly or through a
//! remote-peering provider's layer-2 pseudowire, and its responder
//! pathologies), and the registry view of those interfaces (which addresses
//! are listed, which map to ASNs, which listings are stale). The scene *is*
//! the ground truth; `remote-peering`'s measurement pipeline is only allowed
//! to look at the registry and at ping replies, exactly like the paper.
//!
//! Embedded datasets:
//!
//! - [`dataset::STUDIED_22`] — the paper's Table 1: the 22 IXPs with
//!   looking-glass servers used in the section 3 study;
//! - [`dataset::euro_ix_65`] — the Euro-IX-style set of 65 IXPs used in the
//!   section 4 offload study (a superset of the 22).

pub mod dataset;
pub mod membership;
pub mod model;
pub mod provider;
pub mod registry;

pub use dataset::{euro_ix_65, IxpMeta, STUDIED_22};
pub use membership::{build_scene, PathologyRates, SceneConfig};
pub use model::{Access, IxpInstance, IxpScene, LgOperator, MemberInterface, ResponderProfile};
pub use provider::{default_providers, RemotePeeringProvider};
pub use registry::{ListingEntry, Registry};
