//! Embedded IXP datasets.
//!
//! [`STUDIED_22`] reprints the paper's Table 1 — the 22 IXPs, across four
//! continents, that had PCH or RIPE NCC looking-glass servers during the
//! October 2013 – January 2014 campaign. The `paper_*` fields are the
//! published values and serve as fidelity references for the regenerated
//! Table 1; the `remote_share` and `secondary_site` fields encode the
//! qualitative facts the paper reports about each IXP (e.g. roughly one
//! fifth of AMS-IX members peered remotely; TOP-IX federates with VSIX in
//! Padua and LyonIX in Lyon, which drives its high remote fraction; DIX-IE
//! and CABASE showed no remote peers at all).
//!
//! [`euro_ix_65`] extends the 22 to the 65-IXP Euro-IX-affiliated set of
//! February 2013 used by the section 4 offload study, including the
//! additional IXPs the paper names in figures 7 and 8 (Terremark, SFINX,
//! CoreSite, NL-ix) with their reported properties (Terremark: 267 members,
//! mostly from South and Central America, sharing only ~50 with the big
//! European trio).

use crate::model::LgOperator;
use rp_types::geo::Continent;
use serde::Serialize;

/// Static metadata of one IXP.
#[derive(Debug, Clone, Serialize)]
pub struct IxpMeta {
    /// Short name as used throughout the paper's figures.
    pub acronym: &'static str,
    /// Full name.
    pub name: &'static str,
    /// Main-site city (must exist in [`rp_types::geo::WORLD_CITIES`]).
    pub city: &'static str,
    /// Peak traffic in Tbps from Table 1 (`None` where the paper has N/A).
    pub peak_traffic_tbps: Option<f64>,
    /// Member count from Table 1 / Euro-IX data — the membership generator's
    /// size target.
    pub paper_members: u32,
    /// Analyzed-interface count from Table 1 (only for the studied 22);
    /// a fidelity reference, never an input.
    pub paper_analyzed: Option<u32>,
    /// Looking-glass servers present (empty = not probeable; such IXPs only
    /// participate in the offload study).
    pub lg: &'static [LgOperator],
    /// Target fraction of members peering remotely (ground-truth knob; the
    /// paper observed "up to 20%", about one fifth at AMS-IX, and none at
    /// DIX-IE and CABASE).
    pub remote_share: f64,
    /// Federated second site: (city, fraction of members attaching there).
    /// Probes crossing the inter-site span are what the LG-consistent filter
    /// has to catch.
    pub secondary_site: Option<(&'static str, f64)>,
    /// Historical catchment role: an extra gravity factor for members from
    /// one continent. Terremark's NAP of the Americas drew "numerous
    /// members ... from South and Central America" despite the distance.
    pub magnet: Option<(Continent, f64)>,
}

use LgOperator::{Pch, RipeNcc};

const BOTH: &[LgOperator] = &[Pch, RipeNcc];
const PCH: &[LgOperator] = &[Pch];
const RIPE: &[LgOperator] = &[RipeNcc];
const NONE: &[LgOperator] = &[];

macro_rules! ixp {
    ($acr:expr, $name:expr, $city:expr, $peak:expr, $members:expr, $analyzed:expr,
     $lg:expr, $remote:expr, $site2:expr) => {
        IxpMeta {
            acronym: $acr,
            name: $name,
            city: $city,
            peak_traffic_tbps: $peak,
            paper_members: $members,
            paper_analyzed: $analyzed,
            lg: $lg,
            remote_share: $remote,
            secondary_site: $site2,
            magnet: None,
        }
    };
}

/// The paper's Table 1: the 22 studied IXPs, in the table's order
/// (descending analyzed-interface count).
pub const STUDIED_22: &[IxpMeta] = &[
    ixp!(
        "AMS-IX",
        "Amsterdam Internet Exchange",
        "Amsterdam",
        Some(5.48),
        638,
        Some(665),
        BOTH,
        0.20,
        None
    ),
    ixp!(
        "DE-CIX",
        "German Commercial Internet Exchange",
        "Frankfurt",
        Some(3.21),
        463,
        Some(535),
        BOTH,
        0.16,
        None
    ),
    ixp!(
        "LINX",
        "London Internet Exchange",
        "London",
        Some(2.60),
        497,
        Some(521),
        BOTH,
        0.15,
        None
    ),
    ixp!(
        "HKIX",
        "Hong Kong Internet Exchange",
        "Hong Kong",
        Some(0.48),
        213,
        Some(278),
        PCH,
        0.12,
        None
    ),
    ixp!(
        "NYIIX",
        "New York International Internet Exchange",
        "New York",
        Some(0.46),
        132,
        Some(239),
        PCH,
        0.13,
        None
    ),
    ixp!(
        "MSK-IX",
        "Moscow Internet eXchange",
        "Moscow",
        Some(1.32),
        367,
        Some(218),
        BOTH,
        0.07,
        None
    ),
    ixp!(
        "PLIX",
        "Polish Internet Exchange",
        "Warsaw",
        Some(0.63),
        235,
        Some(207),
        PCH,
        0.08,
        None
    ),
    ixp!(
        "France-IX",
        "France-IX",
        "Paris",
        Some(0.23),
        230,
        Some(201),
        BOTH,
        0.14,
        None
    ),
    ixp!(
        "PTT",
        "PTTMetro Sao Paolo",
        "Sao Paulo",
        Some(0.30),
        482,
        Some(180),
        PCH,
        0.13,
        Some(("Rio de Janeiro", 0.06))
    ),
    ixp!(
        "SIX",
        "Seattle Internet Exchange",
        "Seattle",
        Some(0.53),
        177,
        Some(175),
        BOTH,
        0.08,
        None
    ),
    ixp!(
        "LoNAP",
        "London Network Access Point",
        "London",
        Some(0.10),
        142,
        Some(166),
        PCH,
        0.11,
        None
    ),
    ixp!(
        "JPIX",
        "Japan Internet Exchange",
        "Tokyo",
        Some(0.43),
        131,
        Some(163),
        PCH,
        0.09,
        None
    ),
    ixp!(
        "TorIX",
        "Toronto Internet Exchange",
        "Toronto",
        Some(0.28),
        177,
        Some(161),
        PCH,
        0.08,
        None
    ),
    ixp!(
        "VIX",
        "Vienna Internet Exchange",
        "Vienna",
        Some(0.19),
        121,
        Some(134),
        BOTH,
        0.09,
        None
    ),
    ixp!(
        "MIX",
        "Milan Internet Exchange",
        "Milan",
        Some(0.16),
        133,
        Some(131),
        PCH,
        0.08,
        None
    ),
    ixp!(
        "TOP-IX",
        "Torino Piemonte Internet Exchange",
        "Turin",
        Some(0.05),
        80,
        Some(91),
        PCH,
        0.30,
        Some(("Padua", 0.12))
    ),
    ixp!(
        "Netnod",
        "Netnod Internet Exchange",
        "Stockholm",
        Some(1.34),
        89,
        Some(71),
        BOTH,
        0.06,
        None
    ),
    ixp!(
        "KINX",
        "Korea Internet Neutral Exchange",
        "Seoul",
        Some(0.15),
        46,
        Some(71),
        PCH,
        0.06,
        None
    ),
    ixp!(
        "CABASE",
        "Argentine Chamber of Internet",
        "Buenos Aires",
        Some(0.02),
        101,
        Some(68),
        PCH,
        0.0,
        None
    ),
    ixp!(
        "INEX",
        "Internet Neutral Exchange",
        "Dublin",
        Some(0.13),
        63,
        Some(66),
        RIPE,
        0.08,
        None
    ),
    ixp!(
        "DIX-IE",
        "Distributed Internet Exchange in Edo",
        "Tokyo",
        None,
        36,
        Some(56),
        PCH,
        0.0,
        None
    ),
    ixp!(
        "TIE",
        "Telx Internet Exchange",
        "New York",
        Some(0.02),
        149,
        Some(54),
        PCH,
        0.10,
        None
    ),
];

/// Additional Euro-IX-affiliated IXPs (no looking glass in our scenario —
/// they join the offload study only). Member counts are plausible 2013-era
/// values; the four IXPs the paper names in figures 7–8 carry the properties
/// it reports.
const EXTRA_43: &[IxpMeta] = &[
    // Named in the paper's figures 7 and 8.
    IxpMeta {
        acronym: "Terremark",
        name: "Terremark NAP of the Americas",
        city: "Miami",
        peak_traffic_tbps: Some(0.12),
        paper_members: 267,
        paper_analyzed: None,
        lg: NONE,
        remote_share: 0.10,
        secondary_site: None,
        magnet: Some((Continent::SouthAmerica, 20.0)),
    },
    ixp!(
        "SFINX",
        "Paris French Internet Exchange",
        "Paris",
        Some(0.04),
        110,
        None,
        NONE,
        0.05,
        None
    ),
    ixp!(
        "CoreSite",
        "CoreSite Any2 Exchange",
        "Los Angeles",
        Some(0.10),
        210,
        None,
        NONE,
        0.06,
        None
    ),
    ixp!(
        "NL-ix",
        "Netherlands Internet Exchange",
        "Amsterdam",
        Some(0.30),
        240,
        None,
        NONE,
        0.10,
        None
    ),
    // RedIRIS's home exchanges (their members are excluded from its
    // candidate remote peers).
    ixp!(
        "ESpanix",
        "Espana Internet Exchange",
        "Madrid",
        Some(0.18),
        58,
        None,
        NONE,
        0.03,
        None
    ),
    ixp!(
        "CATNIX",
        "Catalunya Neutral Internet Exchange",
        "Barcelona",
        Some(0.01),
        28,
        None,
        NONE,
        0.02,
        None
    ),
    // The paper mentions TOP-IX's partners VSIX and LyonIX.
    ixp!(
        "VSIX",
        "Veneto System Internet Exchange",
        "Padua",
        Some(0.01),
        35,
        None,
        NONE,
        0.05,
        None
    ),
    ixp!(
        "LyonIX",
        "Lyon Internet Exchange",
        "Lyon",
        Some(0.01),
        60,
        None,
        NONE,
        0.06,
        None
    ),
    // Remaining Euro-IX affiliates, Europe first.
    ixp!(
        "BIX",
        "Budapest Internet Exchange",
        "Budapest",
        Some(0.25),
        70,
        None,
        NONE,
        0.05,
        None
    ),
    ixp!(
        "NIX.CZ",
        "Neutral Internet Exchange Prague",
        "Prague",
        Some(0.22),
        95,
        None,
        NONE,
        0.05,
        None
    ),
    ixp!(
        "SwissIX",
        "Swiss Internet Exchange",
        "Zurich",
        Some(0.18),
        120,
        None,
        NONE,
        0.06,
        None
    ),
    ixp!(
        "CIXP",
        "CERN Internet Exchange Point",
        "Geneva",
        Some(0.02),
        30,
        None,
        NONE,
        0.03,
        None
    ),
    ixp!(
        "BNIX",
        "Belgian National Internet Exchange",
        "Brussels",
        Some(0.12),
        55,
        None,
        NONE,
        0.04,
        None
    ),
    ixp!(
        "DIX",
        "Danish Internet Exchange",
        "Copenhagen",
        Some(0.05),
        50,
        None,
        NONE,
        0.04,
        None
    ),
    ixp!(
        "NIX",
        "Norwegian Internet Exchange",
        "Oslo",
        Some(0.08),
        45,
        None,
        NONE,
        0.04,
        None
    ),
    ixp!(
        "FICIX",
        "Finnish Communication and Internet Exchange",
        "Helsinki",
        Some(0.06),
        35,
        None,
        NONE,
        0.03,
        None
    ),
    ixp!(
        "GigaPIX",
        "Gigabit Portuguese Internet Exchange",
        "Lisbon",
        Some(0.02),
        40,
        None,
        NONE,
        0.04,
        None
    ),
    ixp!(
        "GR-IX",
        "Greek Internet Exchange",
        "Athens",
        Some(0.03),
        35,
        None,
        NONE,
        0.04,
        None
    ),
    ixp!(
        "RoNIX",
        "Romanian Network for Internet Exchange",
        "Bucharest",
        Some(0.09),
        45,
        None,
        NONE,
        0.04,
        None
    ),
    ixp!(
        "UA-IX",
        "Ukrainian Internet Exchange",
        "Kyiv",
        Some(0.20),
        85,
        None,
        NONE,
        0.03,
        None
    ),
    ixp!(
        "ECIX",
        "European Commercial Internet Exchange",
        "Frankfurt",
        Some(0.12),
        90,
        None,
        NONE,
        0.08,
        None
    ),
    ixp!(
        "TPIX",
        "TP Internet Exchange",
        "Warsaw",
        Some(0.05),
        60,
        None,
        NONE,
        0.04,
        None
    ),
    ixp!(
        "InterLAN",
        "InterLAN Internet Exchange",
        "Bucharest",
        Some(0.03),
        40,
        None,
        NONE,
        0.03,
        None
    ),
    ixp!(
        "SIX.SK",
        "Slovak Internet Exchange",
        "Vienna",
        Some(0.04),
        35,
        None,
        NONE,
        0.03,
        None
    ),
    ixp!(
        "IXManchester",
        "IX Manchester",
        "Manchester",
        Some(0.02),
        45,
        None,
        NONE,
        0.07,
        None
    ),
    ixp!(
        "TIX",
        "Telehouse Internet Exchange",
        "Istanbul",
        Some(0.03),
        40,
        None,
        NONE,
        0.04,
        None
    ),
    ixp!(
        "RIX",
        "Rome Internet Exchange",
        "Rome",
        Some(0.02),
        35,
        None,
        NONE,
        0.05,
        None
    ),
    // North America.
    ixp!(
        "Equinix-ASH",
        "Equinix Exchange Ashburn",
        "Ashburn",
        Some(0.35),
        220,
        None,
        NONE,
        0.07,
        None
    ),
    ixp!(
        "Equinix-CHI",
        "Equinix Exchange Chicago",
        "Chicago",
        Some(0.20),
        150,
        None,
        NONE,
        0.06,
        None
    ),
    ixp!(
        "Equinix-SV",
        "Equinix Exchange Silicon Valley",
        "San Jose",
        Some(0.25),
        170,
        None,
        NONE,
        0.07,
        None
    ),
    ixp!(
        "Equinix-DAL",
        "Equinix Exchange Dallas",
        "Dallas",
        Some(0.10),
        90,
        None,
        NONE,
        0.05,
        None
    ),
    ixp!(
        "QIX",
        "Quebec Internet Exchange",
        "Montreal",
        Some(0.02),
        40,
        None,
        NONE,
        0.04,
        None
    ),
    ixp!(
        "VANIX",
        "Vancouver Internet Exchange",
        "Vancouver",
        Some(0.01),
        30,
        None,
        NONE,
        0.04,
        None
    ),
    // Latin America.
    ixp!(
        "PTT-RJ",
        "PTTMetro Rio de Janeiro",
        "Rio de Janeiro",
        Some(0.05),
        90,
        None,
        NONE,
        0.08,
        None
    ),
    ixp!(
        "PTT-POA",
        "PTTMetro Porto Alegre",
        "Porto Alegre",
        Some(0.02),
        50,
        None,
        NONE,
        0.08,
        None
    ),
    ixp!(
        "NAP-CL",
        "NAP Chile",
        "Santiago",
        Some(0.03),
        45,
        None,
        NONE,
        0.05,
        None
    ),
    ixp!(
        "NAP-CO",
        "NAP Colombia",
        "Bogota",
        Some(0.02),
        40,
        None,
        NONE,
        0.05,
        None
    ),
    ixp!(
        "NAP-PE",
        "NAP Peru",
        "Lima",
        Some(0.01),
        30,
        None,
        NONE,
        0.04,
        None
    ),
    // Asia-Pacific.
    ixp!(
        "JPNAP",
        "Japan Network Access Point",
        "Tokyo",
        Some(0.50),
        90,
        None,
        NONE,
        0.05,
        None
    ),
    ixp!(
        "SGIX",
        "Singapore Internet Exchange",
        "Singapore",
        Some(0.08),
        70,
        None,
        NONE,
        0.12,
        None
    ),
    ixp!(
        "MyIX",
        "Malaysia Internet Exchange",
        "Kuala Lumpur",
        Some(0.03),
        45,
        None,
        NONE,
        0.06,
        None
    ),
    ixp!(
        "IX-AU",
        "Internet Exchange Australia",
        "Sydney",
        Some(0.05),
        60,
        None,
        NONE,
        0.08,
        None
    ),
    // Africa.
    ixp!(
        "JINX",
        "Johannesburg Internet Exchange",
        "Johannesburg",
        Some(0.02),
        50,
        None,
        NONE,
        0.14,
        None
    ),
];

/// The 65-IXP Euro-IX-style set of the section 4 study: the studied 22 plus
/// 43 additional affiliates. Order: studied IXPs first (so `IxpId`s of the
/// section 3 study are stable whether or not the extra 43 are loaded).
pub fn euro_ix_65() -> Vec<IxpMeta> {
    STUDIED_22
        .iter()
        .cloned()
        .chain(EXTRA_43.iter().cloned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_types::geo::try_city;

    #[test]
    fn table1_has_22_rows_matching_paper_totals() {
        assert_eq!(STUDIED_22.len(), 22);
        let analyzed: u32 = STUDIED_22.iter().map(|m| m.paper_analyzed.unwrap()).sum();
        assert_eq!(analyzed, 4_451, "Table 1 analyzed-interface total");
        assert!(STUDIED_22.iter().all(|m| !m.lg.is_empty()));
    }

    #[test]
    fn euro_ix_set_has_65_unique_acronyms() {
        let all = euro_ix_65();
        assert_eq!(all.len(), 65);
        let mut acr: Vec<_> = all.iter().map(|m| m.acronym).collect();
        acr.sort_unstable();
        acr.dedup();
        assert_eq!(acr.len(), 65);
    }

    #[test]
    fn every_city_resolves() {
        for m in euro_ix_65() {
            assert!(try_city(m.city).is_some(), "{} city {}", m.acronym, m.city);
            if let Some((c2, share)) = m.secondary_site {
                assert!(try_city(c2).is_some(), "{} secondary {}", m.acronym, c2);
                assert!((0.0..1.0).contains(&share));
            }
        }
    }

    #[test]
    fn remote_shares_match_paper_qualitative_facts() {
        let by_acr = |a: &str| STUDIED_22.iter().find(|m| m.acronym == a).unwrap();
        // About one fifth of AMS-IX members peer remotely.
        assert!((by_acr("AMS-IX").remote_share - 0.20).abs() < 1e-9);
        // No remote peers detected at DIX-IE and CABASE.
        assert_eq!(by_acr("DIX-IE").remote_share, 0.0);
        assert_eq!(by_acr("CABASE").remote_share, 0.0);
        // TOP-IX's federation gives it the highest remote fraction.
        let top = by_acr("TOP-IX").remote_share;
        assert!(STUDIED_22.iter().all(|m| m.remote_share <= top));
    }

    #[test]
    fn figure7_ixps_are_present() {
        let all = euro_ix_65();
        for acr in [
            "AMS-IX",
            "LINX",
            "DE-CIX",
            "Terremark",
            "SFINX",
            "Netnod",
            "CoreSite",
            "TIE",
            "NL-ix",
            "PTT",
        ] {
            assert!(all.iter().any(|m| m.acronym == acr), "{acr}");
        }
        let terremark = all.iter().find(|m| m.acronym == "Terremark").unwrap();
        assert_eq!(terremark.paper_members, 267);
        assert_eq!(terremark.city, "Miami");
    }
}
