//! Scene generation: who peers where, and how.
//!
//! The generator assigns topology networks to IXPs with a gravity model
//! (heavy-tailed per-network peering propensity × geographic locality),
//! marks a per-IXP share of distant members as remote peers, and salts the
//! interfaces with the section 3.1 measurement pathologies at configurable
//! rates. Every structural target it aims for is an observable from the
//! paper:
//!
//! - membership sizes track Table 1 / Euro-IX member counts;
//! - the distribution of per-network IXP counts is majority-1 with a tail
//!   reaching well past ten (figure 4a);
//! - the three big European IXPs share many members while Terremark's
//!   mostly-Americas membership overlaps them in only a few dozen networks
//!   (figures 7 and 8);
//! - remote shares per IXP follow the dataset's `remote_share` knob (up to
//!   ~20%, zero at DIX-IE and CABASE — figure 3).

use crate::dataset::IxpMeta;
use crate::model::{Access, IxpInstance, IxpScene, ListingInfo, MemberInterface, ResponderProfile};
use crate::provider::default_providers;
use rand::rngs::StdRng;
use rand::RngExt;
use rp_topology::{AsType, Topology};
use rp_types::dist::{coin, pareto};
use rp_types::geo::WORLD_CITIES;
use rp_types::{seed, IxpId, NetworkId};
use serde::{Deserialize, Serialize};

/// Rates at which the generator injects the measurement pathologies each of
/// the paper's six filters exists to catch. Defaults are tuned so the
/// paper-scale campaign discards interfaces in the same proportions as the
/// paper's filter accounting (20 / 82 / 20 / 100 / 28 / 5 out of ~4,725
/// probed).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathologyRates {
    /// Listed address with no device behind it (sample-size filter).
    pub absent: f64,
    /// Responder drops ICMP (sample-size filter).
    pub blackhole: f64,
    /// Initial-TTL change mid-campaign (TTL-switch filter).
    pub ttl_change: f64,
    /// Listed address actually one IP hop behind the fabric (TTL-match
    /// filter).
    pub extra_hop: f64,
    /// Persistently congested access port with heavy jitter (RTT-consistent
    /// filter).
    pub congested: f64,
    /// Elevated floor during the campaign's second half, breaking agreement
    /// between early-probing and late-probing LG servers (LG-consistent
    /// filter).
    pub late_epoch: f64,
    /// Address that no registry source maps to an ASN.
    pub unidentifiable: f64,
    /// Registry ASN mapping changes mid-campaign (ASN-change filter).
    pub asn_change: f64,
}

impl Default for PathologyRates {
    fn default() -> Self {
        PathologyRates {
            absent: 0.0025,
            blackhole: 0.0025,
            ttl_change: 0.017,
            extra_hop: 0.003,
            congested: 0.05,
            late_epoch: 0.004,
            unidentifiable: 0.27,
            asn_change: 0.0011,
        }
    }
}

/// Scene-generation configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Master seed (independent of the topology seed).
    pub seed: u64,
    /// Scales every membership count; 1.0 reproduces paper-scale IXPs.
    pub scale: f64,
    /// Probability that a member holds a second interface in the same IXP
    /// subnet.
    pub second_interface_prob: f64,
    /// Multiplier on every IXP's `remote_share` (scenario knob; 1.0 keeps
    /// the dataset's per-IXP shares, 0.0 removes remote peering entirely).
    /// The effective share is clamped to 0.95 so memberships stay mixed.
    pub remote_share_scale: f64,
    /// Multiplier on remote-provider pseudowire propagation delay (scenario
    /// knob; >1.0 models longer layer-2 detours, <1.0 shorter ones).
    pub pseudowire_slack: f64,
    /// Pathology rates.
    pub rates: PathologyRates,
}

impl SceneConfig {
    /// Paper-scale scene.
    pub fn paper_scale(seed: u64) -> Self {
        SceneConfig {
            seed,
            scale: 1.0,
            second_interface_prob: 0.12,
            remote_share_scale: 1.0,
            pseudowire_slack: 1.0,
            rates: PathologyRates::default(),
        }
    }

    /// Reduced scene for tests (about a tenth of the memberships).
    pub fn test_scale(seed: u64) -> Self {
        SceneConfig {
            scale: 0.35,
            ..SceneConfig::paper_scale(seed)
        }
    }
}

/// Peering-propensity weight of a network: how eagerly it joins IXPs.
/// Heavy-tailed so a handful of networks (CDNs, global content, the big
/// eyeball aggregators, the largest transit providers) appear at most IXPs
/// while the majority join one or none — the figure 4a shape. The
/// `size_boost` terms put the address-space giants and the big-cone transit
/// providers at the exchanges, which is what lets a single large IXP make
/// most of the Internet's interfaces reachable via peering (figure 10).
fn propensity(
    topo: &Topology,
    net: NetworkId,
    max_space: f64,
    cone_bounds: &[u64],
    max_cone: f64,
    rng: &mut StdRng,
) -> f64 {
    let node = topo.node(net);
    let type_boost = match node.kind {
        AsType::Cdn => 10.0,
        AsType::Content => 1.0,
        AsType::Hosting => 1.3,
        AsType::Transit => 0.25,
        AsType::Access => 1.0,
        AsType::Tier1 => 1.2,
        AsType::Nren => 0.7,
        AsType::Enterprise => 0.08,
    };
    // The eyeball aggregators and other address-space giants are the
    // members that make one big IXP cover most of the Internet's interfaces
    // (figure 10); the *cone* coverage of transit members is deliberately
    // modest so the traffic coverage stays partial (figure 9). Prominence
    // couples membership with traffic volume: the networks that send the
    // most bytes are also the ones at the most exchanges.
    let space_boost = 1.0 + 600.0 * (node.address_space as f64 / max_space).powf(1.2);
    let cone_boost = match node.kind {
        AsType::Transit | AsType::Tier1 => {
            1.0 + 0.3 * (cone_bounds[net.index()] as f64 / max_cone).sqrt()
        }
        _ => 1.0,
    };
    // Threshold-like prominence effect: the handful of top content players
    // are at effectively every big exchange, while mid-tier networks mostly
    // stay home. This is what concentrates the offload potential at the big
    // hubs (one IXP captures ~2/3 of the total potential, figure 7) while
    // keeping the overall offloadable share of traffic partial (figure 9).
    let prominence_boost = 1.0 + 4_000.0 * (node.prominence / 3_000.0).powf(1.0);
    // A sizeable share of content infrastructure interconnects through
    // private interconnects and on-net deployments instead of public IXP
    // fabrics; such networks rarely appear in IXP member lists no matter
    // how large they are. This keeps the covered share of traffic partial
    // even though the very largest public peers sit at every hub.
    let pni_oriented =
        matches!(node.kind, AsType::Content | AsType::Cdn | AsType::Hosting) && coin(rng, 0.5);
    let pni_factor = if pni_oriented { 0.002 } else { 1.0 };
    type_boost
        * space_boost
        * cone_boost
        * prominence_boost
        * pni_factor
        * pareto(rng, 1.0, 2.5).min(8.0)
}

/// Gravity factor between a network's home city and an IXP city:
/// distance-decayed, so a Miami exchange draws Caribbean and northern
/// South-American members while Amsterdam draws the European core. The
/// IXP's `magnet` catchment (Terremark ↔ Latin America) adds on top.
fn locality(topo: &Topology, net: NetworkId, meta: &IxpMeta, ixp_city: u16) -> f64 {
    let home = topo.node(net).home_city;
    if home == ixp_city {
        return 30.0;
    }
    let hc = WORLD_CITIES[home as usize];
    let ic = WORLD_CITIES[ixp_city as usize];
    let km = hc.location.distance_km(ic.location);
    let magnet = match meta.magnet {
        Some((continent, factor)) if hc.continent == continent => factor,
        _ => 1.0,
    };
    magnet * (1.0 + 11.0 * (-km / 1_500.0).exp())
}

/// Weighted sampling without replacement (Efraimidis–Spirakis): take the
/// `m` largest keys `u^(1/w)`.
fn weighted_sample(rng: &mut StdRng, weights: &[f64], m: usize) -> Vec<usize> {
    let mut keyed: Vec<(f64, usize)> = weights
        .iter()
        .enumerate()
        .filter(|(_, w)| **w > 0.0)
        .map(|(i, w)| {
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            (u.ln() / w, i)
        })
        .collect();
    let m = m.min(keyed.len());
    // ln(u)/w is negative; larger (closer to zero) = better.
    keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("keys are finite"));
    keyed.truncate(m);
    keyed.into_iter().map(|(_, i)| i).collect()
}

fn city_index(name: &str) -> u16 {
    WORLD_CITIES
        .iter()
        .position(|c| c.name == name)
        .unwrap_or_else(|| panic!("unknown city {name}")) as u16
}

/// Can this network plausibly peer remotely? Networks that run global
/// infrastructure footprints (tier-1s, CDNs, transit) extend their own
/// networks instead (section 5: such networks "can afford extending their
/// own infrastructures to peer directly at distant IXPs").
fn remote_eligible(kind: AsType) -> bool {
    !matches!(kind, AsType::Tier1 | AsType::Cdn | AsType::Transit)
}

/// Build the scene: memberships, attachments, pathologies.
pub fn build_scene(topo: &Topology, metas: &[IxpMeta], cfg: &SceneConfig) -> IxpScene {
    let _sp = rp_obs::span("ixp.build_scene");
    let providers = default_providers();
    let n = topo.len();

    // Per-network propensity, drawn once so the same heavy hitters recur
    // across IXPs (that correlation is what creates membership overlap).
    let mut prop_rng = seed::rng(cfg.seed, "propensity", 0);
    let cone_bounds = rp_topology::cone::cone_size_upper_bounds(topo);
    let max_space = topo
        .ases
        .iter()
        .map(|a| a.address_space)
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let max_cone = cone_bounds.iter().copied().max().unwrap_or(1).max(1) as f64;
    let propensities: Vec<f64> = topo
        .ids()
        .map(|id| propensity(topo, id, max_space, &cone_bounds, max_cone, &mut prop_rng))
        .collect();
    // --- Membership assignment: gravity with capacity. --------------------
    //
    // Each network receives a membership quota k proportional to its
    // propensity (most networks get 0 or 1; the heavy hitters get dozens)
    // and fills it with its best-preference IXPs — preference being
    // locality × exchange size. This produces the structure the paper's
    // section 4 results rest on: the traffic-heavy European networks sit at
    // *all* the big European exchanges (so realizing AMS-IX first leaves
    // little at LINX, figure 8), the Latin-American carriers cluster at
    // the Americas exchanges (the Terremark effect), and only the global
    // elite appears on both sides of the Atlantic (the ~50 members
    // Terremark shares with the trio).
    let m_targets: Vec<usize> = metas
        .iter()
        .map(|m| ((m.paper_members as f64) * cfg.scale).round().max(2.0) as usize)
        .collect();
    let quota_total: usize = m_targets.iter().sum();
    let ixp_cities: Vec<u16> = metas.iter().map(|m| city_index(m.city)).collect();

    let mut members_per_ixp: Vec<Vec<usize>> = vec![Vec::new(); metas.len()];
    {
        let mut assign_rng = seed::rng(cfg.seed, "assign", 0);
        let sum_w: f64 = propensities.iter().sum();
        // Process networks in descending propensity so the heavyweights
        // claim the big exchanges before capacity runs out.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|a, b| {
            propensities[*b]
                .partial_cmp(&propensities[*a])
                .expect("propensities are finite")
                .then(a.cmp(b))
        });
        let mut capacity = m_targets.clone();
        // Bigger exchanges attract members disproportionately (joining
        // AMS-IX unlocks far more peers than a 40-member national IX).
        let size_factor: Vec<f64> = m_targets.iter().map(|m| (*m as f64).powf(0.7)).collect();
        for &net_idx in &order {
            let raw = quota_total as f64 * propensities[net_idx] / sum_w;
            let mut k = raw.floor() as usize;
            if coin(&mut assign_rng, raw.fract()) {
                k += 1;
            }
            let k = k.min(metas.len());
            if k == 0 {
                continue;
            }
            let net = NetworkId(net_idx as u32);
            let mut scored: Vec<(f64, usize)> = (0..metas.len())
                .filter(|&x| capacity[x] > 0)
                .map(|x| {
                    let noise = 0.7 + 0.6 * assign_rng.random::<f64>();
                    (
                        locality(topo, net, &metas[x], ixp_cities[x]) * size_factor[x] * noise,
                        x,
                    )
                })
                .collect();
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1)));
            for (_, x) in scored.into_iter().take(k) {
                members_per_ixp[x].push(net_idx);
                capacity[x] -= 1;
            }
        }

        // Quota capping (a network can join at most every IXP once) leaves
        // some capacity unclaimed; fill it with gravity-sampled locals so
        // membership counts land on the Table 1 / Euro-IX targets.
        for x in 0..metas.len() {
            if capacity[x] == 0 {
                continue;
            }
            let mut taken = vec![false; n];
            for &m in &members_per_ixp[x] {
                taken[m] = true;
            }
            let weights: Vec<f64> = (0..n)
                .map(|i| {
                    if taken[i] {
                        0.0
                    } else {
                        propensities[i]
                            * locality(topo, NetworkId(i as u32), &metas[x], ixp_cities[x])
                    }
                })
                .collect();
            let mut fill_rng = seed::rng(cfg.seed, "assign-fill", x as u64);
            for i in weighted_sample(&mut fill_rng, &weights, capacity[x]) {
                members_per_ixp[x].push(i);
            }
            capacity[x] = 0;
        }
    }

    let mut ixps = Vec::with_capacity(metas.len());
    for (ixp_idx, meta) in metas.iter().enumerate() {
        let id = IxpId(ixp_idx as u32);
        let mut rng = seed::rng(cfg.seed, "ixp-members", ixp_idx as u64);
        let ixp_city = ixp_cities[ixp_idx];
        let ixp_loc = WORLD_CITIES[ixp_city as usize].location;

        let mut chosen = members_per_ixp[ixp_idx].clone();
        chosen.sort_unstable();
        chosen.dedup();

        // --- Decide who peers remotely: distant, remote-eligible members,
        // up to the IXP's remote share.
        let distant: Vec<usize> = chosen
            .iter()
            .copied()
            .filter(|&i| {
                let node = topo.node(NetworkId(i as u32));
                node.home_city != ixp_city && remote_eligible(node.kind)
            })
            .collect();
        let effective_share = (meta.remote_share * cfg.remote_share_scale).min(0.95);
        let remote_target = ((chosen.len() as f64) * effective_share).round() as usize;
        let mut remote: std::collections::HashSet<usize> = std::collections::HashSet::new();
        {
            // Uniform choice among the distant candidates.
            let take = remote_target.min(distant.len());
            let uniform: Vec<f64> = vec![1.0; distant.len()];
            for k in weighted_sample(&mut rng, &uniform, take) {
                remote.insert(distant[k]);
            }
        }

        // --- Secondary site membership.
        let sites: Vec<u16> = match meta.secondary_site {
            Some((c2, _)) => vec![ixp_city, city_index(c2)],
            None => vec![ixp_city],
        };
        let site2_share = meta.secondary_site.map(|(_, s)| s).unwrap_or(0.0);

        // --- Plan interfaces per member. At studied IXPs the number of
        // *listed* (probeable) interfaces targets the Table 1 analyzed count
        // plus the expected filter-discard margin; registries cover only
        // part of some memberships and list several addresses for others.
        let iface_target = meta
            .paper_analyzed
            .map(|a| ((a as f64) * 1.06 * cfg.scale).round().max(2.0) as usize);
        let plan: Vec<(usize, u32, u32)> = match iface_target {
            Some(target) => {
                let covered = chosen.len().min(target);
                let mut extra = target.saturating_sub(covered);
                let mut plan: Vec<(usize, u32, u32)> = chosen
                    .iter()
                    .enumerate()
                    .map(|(k, &net_idx)| {
                        if k < covered {
                            // Covered member: 1 listed interface, plus a
                            // chance of more while the target allows.
                            let mut listed = 1u32;
                            while extra > 0 && coin(&mut rng, cfg.second_interface_prob) {
                                listed += 1;
                                extra -= 1;
                            }
                            (net_idx, listed, 0u32)
                        } else {
                            // Registry-invisible member.
                            (net_idx, 0u32, 1u32)
                        }
                    })
                    .collect();
                // Registries at interface-rich IXPs (e.g. NYIIX: 132
                // members, 239 analyzed interfaces) list several addresses
                // per member; distribute the remaining budget round-robin.
                let mut k = 0usize;
                while extra > 0 && covered > 0 {
                    plan[k % covered].1 += 1;
                    extra -= 1;
                    k += 1;
                }
                plan
            }
            None => chosen
                .iter()
                .map(|&net_idx| {
                    let n = if coin(&mut rng, cfg.second_interface_prob) {
                        2
                    } else {
                        1
                    };
                    (net_idx, 0u32, n)
                })
                .collect(),
        };

        // --- Materialize interfaces.
        let mut members: Vec<MemberInterface> = Vec::new();
        let mut slot = 0u32;
        for &(net_idx, n_listed, n_unlisted) in &plan {
            let net = NetworkId(net_idx as u32);
            let is_remote = remote.contains(&net_idx);
            let site = if coin(&mut rng, site2_share) {
                1u8
            } else {
                0u8
            };
            for iface_k in 0..(n_listed + n_unlisted) {
                let listed = iface_k < n_listed;
                let access = if is_remote {
                    let origin_city = topo.node(net).home_city;
                    let origin = WORLD_CITIES[origin_city as usize].location;
                    // Prefer the provider with the shortest pseudowire, but
                    // not always — contracts are sticky.
                    let delays: Vec<f64> = providers
                        .iter()
                        .map(|p| p.pseudowire_delay_ms(origin, ixp_loc))
                        .collect();
                    let best = delays
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                        .map(|(i, _)| i)
                        .expect("providers exist");
                    let provider = if coin(&mut rng, 0.7) {
                        best
                    } else {
                        rng.random_range(0..providers.len())
                    };
                    Access::Remote {
                        provider: provider as u8,
                        origin_city,
                        access_delay_ms: 0.1 + rng.random::<f64>() * 0.5,
                        site,
                    }
                } else {
                    Access::Direct {
                        colo_delay_ms: 0.15 + rng.random::<f64>() * 0.85,
                        site,
                    }
                };
                let rates = &cfg.rates;
                // 64 and 255 dominate; 128 and 32 are the "relatively
                // infrequent" alternatives the TTL-match filter rejects.
                let initial_ttl = {
                    let u: f64 = rng.random();
                    if u < 0.525 {
                        64
                    } else if u < 0.999 {
                        255
                    } else if u < 0.9997 {
                        128
                    } else {
                        32
                    }
                };
                // Congestion is only injected at main-site ports: a
                // secondary-site member's inter-site span plus a busy epoch
                // could cross the 10 ms threshold, and the paper's manual
                // checks found no direct peer above it.
                let congested = site == 0 && coin(&mut rng, rates.congested);
                let profile = ResponderProfile {
                    initial_ttl,
                    ttl_change: if coin(&mut rng, rates.ttl_change) {
                        let frac = 0.2 + rng.random::<f64>() * 0.6;
                        let new_ttl = if initial_ttl == 64 { 255 } else { 64 };
                        Some((frac, new_ttl))
                    } else {
                        None
                    },
                    blackhole: coin(&mut rng, rates.blackhole),
                    extra_hop: coin(&mut rng, rates.extra_hop),
                    absent: false,
                    // Congested-port model: ICMP control-plane policing.
                    // Most replies take a slow path whose bounded delay
                    // (at most this many ms — low enough that even the
                    // worst-case minimum stays under the 10 ms threshold
                    // for a direct member) scatters RTTs away from the
                    // occasional fast-path floor, and many requests are
                    // dropped outright. The RTT-consistent filter rejects
                    // exactly this signature.
                    congested_extra_ms: if congested {
                        6.3 + rng.random::<f64>() * 1.2
                    } else {
                        0.0
                    },
                    congested_drop: if congested {
                        0.3 + rng.random::<f64>() * 0.15
                    } else {
                        0.0
                    },
                };
                let listing = ListingInfo {
                    listed,
                    identifiable: !coin(&mut rng, rates.unidentifiable),
                    asn_change: coin(&mut rng, rates.asn_change),
                };
                members.push(MemberInterface {
                    network: net,
                    ip: IxpInstance::ip_for_slot(id, slot),
                    access,
                    profile,
                    listing,
                });
                slot += 1;
            }
        }

        // --- Phantom listings: addresses present in registries with no
        // device behind them (stale website data). Only studied IXPs have
        // registries worth salting.
        if iface_target.is_some() && !members.is_empty() {
            let phantoms = ((members.len() as f64) * cfg.rates.absent).round() as usize;
            for _ in 0..phantoms {
                let donor = members[rng.random_range(0..members.len())];
                members.push(MemberInterface {
                    network: donor.network,
                    ip: IxpInstance::ip_for_slot(id, slot),
                    access: donor.access,
                    profile: ResponderProfile {
                        absent: true,
                        ..ResponderProfile::default()
                    },
                    listing: ListingInfo {
                        listed: true,
                        identifiable: false,
                        asn_change: false,
                    },
                });
                slot += 1;
            }
        }

        ixps.push(std::sync::Arc::new(IxpInstance {
            id,
            meta: meta.clone(),
            sites,
            members,
        }));
    }

    IxpScene { ixps, providers }
}

/// Scene-side late-epoch delay constant range, exposed so the campaign and
/// tests agree on what "elevated floor" means (one-way ms added in the
/// second half of the campaign for interfaces flagged by `late_epoch`).
pub const LATE_EPOCH_EXTRA_MS: (f64, f64) = (5.5, 8.0);

/// Sample the late-epoch flag + magnitude for an interface, deterministic in
/// the scene seed and interface identity. Kept separate from
/// [`ResponderProfile`] generation because it is a *link* property of the
/// campaign window, not of the device.
pub fn late_epoch_extra_ms(cfg: &SceneConfig, ixp: IxpId, slot: u32) -> f64 {
    let mut rng = seed::rng2(cfg.seed, "late-epoch", ixp.0 as u64, slot as u64);
    if coin(&mut rng, cfg.rates.late_epoch) {
        LATE_EPOCH_EXTRA_MS.0
            + rng.random::<f64>() * (LATE_EPOCH_EXTRA_MS.1 - LATE_EPOCH_EXTRA_MS.0)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{euro_ix_65, STUDIED_22};
    use rp_topology::{generate, TopologyConfig};

    fn small_world() -> (Topology, IxpScene) {
        let topo = generate(&TopologyConfig::test_scale(31));
        let scene = build_scene(&topo, STUDIED_22, &SceneConfig::test_scale(32));
        (topo, scene)
    }

    #[test]
    fn scene_is_deterministic() {
        let topo = generate(&TopologyConfig::test_scale(31));
        let a = build_scene(&topo, STUDIED_22, &SceneConfig::test_scale(32));
        let b = build_scene(&topo, STUDIED_22, &SceneConfig::test_scale(32));
        for (x, y) in a.ixps.iter().zip(&b.ixps) {
            assert_eq!(x.members, y.members);
        }
    }

    #[test]
    fn membership_sizes_track_targets() {
        let (_, scene) = small_world();
        for ixp in &scene.ixps {
            let target = (ixp.meta.paper_members as f64 * 0.35).round() as usize;
            let got = ixp.member_networks();
            assert!(
                got as f64 >= target as f64 * 0.8 && got <= target + 2,
                "{}: {} vs target {}",
                ixp.meta.acronym,
                got,
                target
            );
        }
    }

    #[test]
    fn remote_shares_are_respected() {
        let (_, scene) = small_world();
        for ixp in &scene.ixps {
            let members = ixp.member_networks() as f64;
            let remote_nets: std::collections::HashSet<_> = ixp
                .members
                .iter()
                .filter(|m| m.access.is_remote())
                .map(|m| m.network)
                .collect();
            let share = remote_nets.len() as f64 / members;
            if ixp.meta.remote_share == 0.0 {
                assert_eq!(remote_nets.len(), 0, "{}", ixp.meta.acronym);
            } else {
                assert!(
                    share < ixp.meta.remote_share + 0.12,
                    "{}: share {share}",
                    ixp.meta.acronym
                );
            }
        }
        // Overall there must be a meaningful remote population.
        let total_remote: usize = scene.ixps.iter().map(|x| x.remote_interfaces()).sum();
        assert!(total_remote > 20, "{total_remote}");
    }

    #[test]
    fn remote_members_are_distant_and_eligible() {
        let (topo, scene) = small_world();
        for ixp in &scene.ixps {
            let ixp_city = city_index(ixp.meta.city);
            for m in ixp.members.iter().filter(|m| m.access.is_remote()) {
                let node = topo.node(m.network);
                assert_ne!(node.home_city, ixp_city, "remote member lives at the IXP");
                assert!(
                    remote_eligible(node.kind),
                    "{:?} peering remotely",
                    node.kind
                );
                if let Access::Remote { origin_city, .. } = m.access {
                    assert_eq!(origin_city, node.home_city);
                }
            }
        }
    }

    #[test]
    fn ixp_count_distribution_is_heavy_tailed() {
        let topo = generate(&TopologyConfig::paper_scale(33));
        let scene = build_scene(&topo, STUDIED_22, &SceneConfig::paper_scale(34));
        let mut counts = std::collections::HashMap::new();
        for ixp in &scene.ixps {
            for net in ixp.member_network_ids() {
                *counts.entry(net).or_insert(0usize) += 1;
            }
        }
        let max = counts.values().copied().max().unwrap();
        let singletons = counts.values().filter(|c| **c == 1).count();
        assert!(max >= 10, "tail reaches {max} IXPs");
        assert!(
            singletons * 2 > counts.len(),
            "majority at one IXP: {singletons}/{}",
            counts.len()
        );
    }

    #[test]
    fn european_trio_overlaps_much_more_than_terremark() {
        let topo = generate(&TopologyConfig::paper_scale(33));
        let scene = build_scene(&topo, &euro_ix_65(), &SceneConfig::paper_scale(34));
        let members = |acr: &str| -> std::collections::HashSet<_> {
            scene
                .ixps
                .iter()
                .find(|x| x.meta.acronym == acr)
                .unwrap()
                .member_network_ids()
                .into_iter()
                .collect()
        };
        let ams = members("AMS-IX");
        let linx = members("LINX");
        let terremark = members("Terremark");
        let ams_linx = ams.intersection(&linx).count();
        let ams_tm = ams.intersection(&terremark).count();
        assert!(
            ams_linx as f64 > 2.0 * ams_tm as f64,
            "AMS∩LINX {ams_linx} vs AMS∩Terremark {ams_tm}"
        );
        // Terremark shares a few dozen members with the trio (the paper
        // reports ~50 of its 267) — mostly the global heavy hitters that
        // peer everywhere.
        assert!((15..=130).contains(&ams_tm), "{ams_tm}");
    }

    #[test]
    fn pathology_rates_land_near_targets() {
        let topo = generate(&TopologyConfig::paper_scale(33));
        let scene = build_scene(&topo, STUDIED_22, &SceneConfig::paper_scale(34));
        let total = scene.total_interfaces() as f64;
        let count = |f: &dyn Fn(&MemberInterface) -> bool| {
            scene
                .ixps
                .iter()
                .flat_map(|x| &x.members)
                .filter(|m| f(m))
                .count() as f64
        };
        let frac_blackhole = count(&|m| m.profile.blackhole) / total;
        let frac_ttl = count(&|m| m.profile.ttl_change.is_some()) / total;
        let frac_ident = count(&|m| m.listing.identifiable) / total;
        assert!((frac_blackhole - 0.002).abs() < 0.002, "{frac_blackhole}");
        assert!((frac_ttl - 0.017).abs() < 0.007, "{frac_ttl}");
        assert!((frac_ident - 0.73).abs() < 0.05, "{frac_ident}");
    }

    #[test]
    fn interfaces_have_unique_addresses() {
        let (_, scene) = small_world();
        for ixp in &scene.ixps {
            let mut ips: Vec<_> = ixp.members.iter().map(|m| m.ip).collect();
            let before = ips.len();
            ips.sort_unstable();
            ips.dedup();
            assert_eq!(before, ips.len(), "{}", ixp.meta.acronym);
        }
    }

    #[test]
    fn late_epoch_is_deterministic_and_sparse() {
        let cfg = SceneConfig::paper_scale(9);
        let a = late_epoch_extra_ms(&cfg, IxpId(3), 17);
        let b = late_epoch_extra_ms(&cfg, IxpId(3), 17);
        assert_eq!(a, b);
        let hits = (0..2_000)
            .filter(|s| late_epoch_extra_ms(&cfg, IxpId(0), *s) > 0.0)
            .count();
        let frac = hits as f64 / 2_000.0;
        assert!((frac - cfg.rates.late_epoch).abs() < 0.012, "{frac}");
    }
}
