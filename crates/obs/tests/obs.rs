//! Unit/integration tests for the observability substrate.
//!
//! Tests share the process-wide registry and enable flag, so every test
//! body runs under one lock and starts from `rp_obs::reset()`.

use rp_obs::metrics::{self, MetricValue, RTT_MS_BUCKETS};
use rp_obs::{counter, gauge, histogram, span, span_under};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    rp_obs::enable();
    rp_obs::reset();
    guard
}

fn find<'a>(tree: &'a [rp_obs::span::SpanNode], name: &str) -> &'a rp_obs::span::SpanNode {
    tree.iter()
        .find(|n| n.name == name)
        .unwrap_or_else(|| panic!("span {name} not in tree"))
}

#[test]
fn spans_nest_and_aggregate_by_path() {
    let _g = serial();
    {
        let _root = span("root");
        for _ in 0..3 {
            let _child = span("child");
        }
    }
    let tree = rp_obs::span::snapshot_tree();
    let root = find(&tree, "root");
    assert_eq!(root.count, 1);
    assert_eq!(root.children.len(), 1);
    let child = &root.children[0];
    assert_eq!(child.name, "child");
    assert_eq!(child.count, 3);
    assert!(child.window_ns <= root.window_ns);
    assert!(root.total_ns >= child.total_ns);
    assert_eq!(root.self_ns, root.total_ns - child.total_ns);
}

#[test]
fn span_under_parents_across_threads() {
    let _g = serial();
    {
        let parent = span("parallel_root");
        let path = parent.path();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = path.clone();
                s.spawn(move || {
                    let _w = span_under(&p, "worker");
                });
            }
        });
    }
    let tree = rp_obs::span::snapshot_tree();
    let root = find(&tree, "parallel_root");
    let worker = &root.children[0];
    assert_eq!(worker.name, "worker");
    assert_eq!(worker.count, 4);
    // Scoped workers join before the parent closes, so their aggregated
    // wall-clock window nests inside the parent's.
    assert!(worker.first_start_ns >= root.first_start_ns);
    assert!(worker.window_ns <= root.window_ns);
}

#[test]
fn span_under_nests_naturally_on_same_thread() {
    let _g = serial();
    {
        let parent = span("serial_root");
        let path = parent.path();
        // Same thread, stack non-empty: the explicit parent is redundant
        // and the span must land at the identical path.
        let _w = span_under(&path, "worker");
    }
    let tree = rp_obs::span::snapshot_tree();
    let root = find(&tree, "serial_root");
    assert_eq!(root.children.len(), 1);
    assert_eq!(root.children[0].name, "worker");
}

#[test]
fn disabled_spans_record_nothing() {
    let _g = serial();
    rp_obs::disable();
    {
        let _root = span("invisible");
    }
    rp_obs::enable();
    assert!(rp_obs::span::snapshot_tree().is_empty());
}

#[test]
fn counters_gauges_histograms_register_and_count() {
    let _g = serial();
    counter!("test.obs.hits").add(5);
    counter!("test.obs.hits").inc();
    gauge!("test.obs.depth").record_max(3);
    gauge!("test.obs.depth").record_max(9);
    gauge!("test.obs.depth").record_max(7);
    let h = histogram!("test.obs.rtt_ms", RTT_MS_BUCKETS);
    h.observe(0.3);
    h.observe(12.0);
    h.observe(5000.0); // overflow bucket

    let snap = metrics::snapshot();
    let get = |name: &str| {
        snap.iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("metric {name} not registered"))
    };
    assert!(matches!(get("test.obs.hits"), MetricValue::Counter(6)));
    assert!(matches!(get("test.obs.depth"), MetricValue::Gauge(9)));
    match get("test.obs.rtt_ms") {
        MetricValue::Histogram {
            bounds,
            buckets,
            count,
            sum,
        } => {
            assert_eq!(bounds, RTT_MS_BUCKETS);
            assert_eq!(buckets.len(), RTT_MS_BUCKETS.len() + 1);
            assert_eq!(count, 3);
            assert_eq!(buckets[0], 1); // 0.3 ≤ 0.5
            assert_eq!(*buckets.last().unwrap(), 1); // 5000 overflows
            assert!((sum - 5012.3).abs() < 0.01);
        }
        other => panic!("expected histogram, got {other:?}"),
    }
}

#[test]
fn disabled_metrics_do_not_move() {
    let _g = serial();
    rp_obs::disable();
    counter!("test.obs.frozen").add(100);
    gauge!("test.obs.frozen_gauge").record_max(100);
    histogram!("test.obs.frozen_hist", RTT_MS_BUCKETS).observe(1.0);
    rp_obs::enable();
    assert_eq!(counter!("test.obs.frozen").get(), 0);
    assert_eq!(gauge!("test.obs.frozen_gauge").get(), 0);
    assert_eq!(
        histogram!("test.obs.frozen_hist", RTT_MS_BUCKETS).count(),
        0
    );
}

#[test]
fn report_document_has_spans_and_metrics() {
    let _g = serial();
    {
        let _root = span("report_root");
        counter!("test.obs.report_counter").inc();
    }
    let mut report = rp_obs::report::RunReport::new();
    report.section("meta", serde_json::json!({"seed": 42u64}));
    let doc = report.finish();
    let text = serde_json::to_string_pretty(&doc).unwrap();
    let back = serde_json::from_str(&text).expect("report round-trips");
    assert_eq!(
        back.get("meta")
            .and_then(|m| m.get("seed"))
            .and_then(|s| s.as_u64()),
        Some(42)
    );
    let spans = back.get("spans").and_then(|s| s.as_array()).unwrap();
    assert!(spans
        .iter()
        .any(|n| n.get("name").and_then(|v| v.as_str()) == Some("report_root")));
    let metrics = back.get("metrics").unwrap();
    assert_eq!(
        metrics
            .get("test.obs.report_counter")
            .and_then(|c| c.get("value"))
            .and_then(|v| v.as_u64()),
        Some(1)
    );
    let trace = rp_obs::report::render_trace();
    assert!(trace.contains("report_root"));
    assert!(trace.contains("count=1"));
}

#[test]
fn metrics_md_matches_catalog() {
    // METRICS.md embeds the generated catalog table between markers; this
    // pins doc <-> catalog, and `assert_cataloged` (a hard panic at
    // registration) pins catalog <-> live registry — so the doc cannot
    // drift from what the code records.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../METRICS.md");
    let text = std::fs::read_to_string(path).expect("METRICS.md at the repository root");
    let begin = "<!-- BEGIN GENERATED: metrics catalog -->\n";
    let end = "<!-- END GENERATED: metrics catalog -->";
    let start = text.find(begin).expect("BEGIN GENERATED marker") + begin.len();
    let stop = text[start..].find(end).expect("END GENERATED marker") + start;
    assert_eq!(
        &text[start..stop],
        rp_obs::metrics::catalog_markdown(),
        "METRICS.md is stale: paste the output of \
         rp_obs::metrics::catalog_markdown() between its markers"
    );
}
