#![warn(missing_docs)]

//! # rp-obs
//!
//! Observability substrate for the remote-peering reproduction: what the
//! pipeline *did* and how long each part took, without perturbing what it
//! *computed*.
//!
//! Three pieces:
//!
//! - [`mod@span`] — hierarchical spans with monotonic timing. Each thread
//!   accumulates span statistics in a thread-local collector; when the
//!   outermost span on a thread closes, the collector merges into the
//!   process-wide aggregate under one short lock. Worker threads (the
//!   vendored rayon spawns plain scoped threads) attach their spans under
//!   an explicit parent handle ([`span_under`]), so the aggregated tree is
//!   identical at every thread count.
//! - [`metrics`] — a process-wide registry of counters, high-water-mark
//!   gauges, and fixed-bucket histograms. All increments are lock-free
//!   atomics; registration (first use of a name) takes a lock once.
//! - [`report`] — assembles the span tree and metric snapshots into a
//!   `run_report.json` document and renders a human-readable span tree for
//!   `--trace`.
//!
//! ## Cost model
//!
//! Everything is gated on a single process-wide flag ([`enabled`], one
//! relaxed atomic load). While disabled — the default — [`span()`] returns an
//! inert guard, counters skip their atomic write, and histograms skip the
//! bucket scan, so instrumented code paths cost one load and one branch.
//! The `obs/*` benches in `benches/parallel.rs` quantify the enabled
//! overhead (<2% on the probing campaign) and confirm the disabled cost is
//! unmeasurable.
//!
//! ## Determinism contract
//!
//! Instrumentation must never feed back into results: it draws no random
//! numbers, allocates no ids the simulation can see, and only ever *reads*
//! pipeline state. `tests/parallel_determinism.rs` pins this down by
//! asserting instrumented and uninstrumented runs produce identical
//! results, and `tests/report_schema.rs` asserts the emitted `results/*.json`
//! files are byte-identical with and without `--report`.
//!
//! ## Naming convention
//!
//! Metric and span names follow `<crate>.<subsystem>.<name>`, e.g.
//! `core.offload.cone_cache.hits` or `netsim.sim.events_processed`.

use std::sync::atomic::{AtomicBool, Ordering};

pub mod compare;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod span;
pub mod timeline;
pub mod trace;

pub use span::{span, span_under, SpanGuard, SpanPath};
pub use timeline::TimelineRecorder;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is collection on? One relaxed load; the gate for every collector.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on (idempotent). Fixes the monotonic time origin on
/// first call so span offsets are comparable across threads.
pub fn enable() {
    span::init_origin();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn collection off (idempotent). Open spans still record on close, so
/// disabling mid-span loses nothing already started.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Clear all aggregated spans and zero every registered metric. Intended
/// for tests; collectors on *other* threads that have not yet flushed are
/// not reachable and keep their local state.
pub fn reset() {
    span::reset();
    metrics::reset();
    timeline::reset();
}

/// Resolve (or register) a counter by name, caching the handle per call
/// site so the hot path is one `OnceLock` load.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// Resolve (or register) a high-water-mark gauge by name, caching the
/// handle per call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

/// Resolve (or register) a fixed-bucket histogram by name, caching the
/// handle per call site. `$bounds` picks the bucket scale (see
/// [`metrics::RTT_MS_BUCKETS`] and [`metrics::DURATION_US_BUCKETS`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr, $bounds:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::metrics::histogram($name, $bounds))
    }};
}
