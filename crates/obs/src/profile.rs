//! Self-profiling: a sampling span-stack profiler producing
//! collapsed-stack (flamegraph-ready) output.
//!
//! Where the span tree reports *aggregate* busy time per path, the
//! profiler answers "where was the pipeline *at*": a sampler thread
//! wakes every [`SAMPLE_INTERVAL`] and snapshots every worker thread's
//! current span stack. Sample counts per distinct stack accumulate into
//! the standard collapsed format (`root;child;leaf COUNT`, one line per
//! stack), which `flamegraph.pl`, speedscope, and inferno all ingest
//! directly.
//!
//! This is wall-clock sampling and therefore **explicitly excluded from
//! determinism-gated artifacts**: `repro profile` writes only
//! `profile.folded` (plus the experiment's normal result files, which
//! remain byte-identical — the profiler only *reads* span stacks). Two
//! profile runs will differ; that is inherent and fine.
//!
//! Mechanics: when profiling is armed, every span open/close mirrors the
//! thread's full span path into a per-thread slot (a tiny mutex-guarded
//! vec — contention is negligible because the sampler holds each slot
//! only long enough to clone it). Threads register their slot on first
//! span; slots outlive the thread via `Arc` so the sampler never races a
//! thread exit.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Sampler wake interval: 1 ms → up to 1000 samples/s across the run.
pub const SAMPLE_INTERVAL: Duration = Duration::from_millis(1);

static ARMED: AtomicBool = AtomicBool::new(false);

/// Is a profiler running? Gates the span-stack mirroring (one relaxed
/// load on each span open/close when obs is enabled).
#[inline(always)]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// One thread's mirrored span stack.
#[derive(Default)]
struct Slot {
    stack: Mutex<Vec<&'static str>>,
}

fn slots() -> &'static Mutex<Vec<Arc<Slot>>> {
    static SLOTS: OnceLock<Mutex<Vec<Arc<Slot>>>> = OnceLock::new();
    SLOTS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static MY_SLOT: Arc<Slot> = {
        let slot = Arc::new(Slot::default());
        slots().lock().expect("profiler slot registry").push(slot.clone());
        slot
    };
}

/// Mirror the calling thread's current span path (called by the span
/// layer on every open/close while armed).
pub(crate) fn record_stack(path: &[&'static str]) {
    MY_SLOT.with(|slot| {
        let mut s = slot.stack.lock().expect("profiler slot");
        s.clear();
        s.extend_from_slice(path);
    });
}

/// A finished profile: sample counts per collapsed stack.
#[derive(Debug, Clone)]
pub struct Profile {
    /// `stack-path → samples`, stack elements joined with `;`.
    pub samples: BTreeMap<String, u64>,
    /// Total samples taken (including idle ones that hit no open span).
    pub total_samples: u64,
}

impl Profile {
    /// Render in collapsed-stack format: one `path count` line per
    /// distinct stack, sorted by path (deterministic given the sample
    /// multiset), trailing newline.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (path, n) in &self.samples {
            out.push_str(path);
            out.push(' ');
            out.push_str(&n.to_string());
            out.push('\n');
        }
        out
    }

    /// The `n` hottest stacks, by sample count descending (ties by path).
    pub fn top(&self, n: usize) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> = self.samples.iter().map(|(p, &c)| (p.as_str(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v.truncate(n);
        v
    }
}

/// A running profiler; [`Profiler::stop`] yields the [`Profile`].
pub struct Profiler {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<Profile>,
}

/// Arm the profiler and start the sampler thread. Call with obs
/// collection enabled, run the workload, then [`Profiler::stop`].
pub fn start() -> Profiler {
    ARMED.store(true, Ordering::SeqCst);
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let handle = std::thread::Builder::new()
        .name("rp-obs-profiler".into())
        .spawn(move || {
            let mut samples: BTreeMap<String, u64> = BTreeMap::new();
            let mut total = 0u64;
            let mut scratch: Vec<Arc<Slot>> = Vec::new();
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(SAMPLE_INTERVAL);
                total += 1;
                scratch.clear();
                scratch.extend(
                    slots()
                        .lock()
                        .expect("profiler slot registry")
                        .iter()
                        .cloned(),
                );
                for slot in &scratch {
                    let stack = slot.stack.lock().expect("profiler slot").clone();
                    if stack.is_empty() {
                        continue;
                    }
                    *samples.entry(stack.join(";")).or_insert(0) += 1;
                }
            }
            Profile {
                samples,
                total_samples: total,
            }
        })
        .expect("spawn profiler thread");
    Profiler { stop, handle }
}

impl Profiler {
    /// Disarm, join the sampler, and return the accumulated profile.
    pub fn stop(self) -> Profile {
        ARMED.store(false, Ordering::SeqCst);
        self.stop.store(true, Ordering::SeqCst);
        self.handle.join().expect("profiler thread panicked")
    }
}
