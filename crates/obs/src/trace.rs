//! Structured trace export: stream span and simulation events to disk as
//! they close, in either of two formats.
//!
//! - **JSONL** (`repro --trace-json PATH`): one JSON object per line —
//!   `span` records as spans close, `slice`/`instant` records from the
//!   data plane, `metric` records for every registered metric at
//!   [`finish`], and a final `summary` line. Line order is arrival
//!   order (wall clock), so the stream is *not* deterministic — it is a
//!   diagnostic artifact, never a gated one.
//! - **Chrome trace-event format** (`repro --trace-chrome PATH`): a JSON
//!   array of trace events loadable in Perfetto or `chrome://tracing`.
//!   Spans become `ph:"X"` complete events on their thread's track;
//!   netsim shards map to dedicated named tracks ([`alloc_tracks`]) with
//!   window slices, and epoch barriers appear as `ph:"i"` instant
//!   events spanning the process.
//!
//! Tracing is wall-clock by nature and shares rp-obs' prime directive:
//! it only *reads* pipeline state. The `results/*` byte-diff matrix in
//! `tests/report_schema.rs` pins down that flipping `--trace-json` on
//! cannot change any gated artifact.
//!
//! ## Bounded output
//!
//! A runaway run could emit unbounded events, so sinks cap at
//! [`MAX_EVENTS`]; past the cap events are counted but not written, and
//! the cap is reported explicitly — in the `summary` line, the Chrome
//! metadata, and a stderr warning — never silently.

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};

/// Hard cap on written trace events per sink; the tail is counted and
/// reported as dropped.
pub const MAX_EVENTS: u64 = 1_000_000;

static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Is a trace sink installed? One relaxed load; gates every emission
/// site so an untraced run costs one branch.
#[inline(always)]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Output format of the installed sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Jsonl,
    Chrome,
}

struct Sink {
    format: Format,
    out: BufWriter<File>,
    /// Chrome arrays need comma management.
    wrote_any: bool,
    written: u64,
    dropped: u64,
}

fn sinks() -> &'static Mutex<Vec<Sink>> {
    static SINKS: OnceLock<Mutex<Vec<Sink>>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(Vec::new()))
}

fn now_ns() -> u64 {
    // The span layer's monotonic origin, so span events and data-plane
    // slices share one timebase.
    crate::span::now_offset_ns()
}

/// Small dense id for the calling thread (Chrome `tid`, JSONL `tid`).
pub fn tid() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(1);
    thread_local! {
        static TID: u32 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Track-id base for shard tracks, above any plausible thread id.
const SHARD_TRACK_BASE: u32 = 10_000;
static NEXT_TRACK: AtomicU32 = AtomicU32::new(SHARD_TRACK_BASE);

/// Reserve `n` consecutive track ids for a simulation's shards and name
/// them `"<label> shard <i>"` in the Chrome output. Returns the base id;
/// shard `i` uses `base + i`.
pub fn alloc_tracks(label: &str, n: usize) -> u32 {
    let base = NEXT_TRACK.fetch_add(n as u32, Ordering::Relaxed);
    let mut g = sinks().lock().expect("trace sink lock");
    for s in g.iter_mut().filter(|s| s.format == Format::Chrome) {
        for i in 0..n {
            let name = format!("{label} shard {i}");
            let ev = format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":{}}}}}",
                base + i as u32,
                json_escape(&name),
            );
            write_raw(s, &ev);
        }
    }
    base
}

fn json_escape(s: &str) -> String {
    serde_json::Value::String(s.to_string()).to_string()
}

fn install(path: &Path, format: Format) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let file = File::create(path)?;
    let mut out = BufWriter::new(file);
    if format == Format::Chrome {
        out.write_all(b"[")?;
    }
    let mut g = sinks().lock().expect("trace sink lock");
    g.push(Sink {
        format,
        out,
        wrote_any: false,
        written: 0,
        dropped: 0,
    });
    ACTIVE.store(true, Ordering::SeqCst);
    Ok(())
}

/// Install a JSONL sink at `path` (parent directories are created).
/// Sinks stack: a JSONL and a Chrome sink can record the same run.
pub fn install_jsonl(path: &Path) -> std::io::Result<()> {
    install(path, Format::Jsonl)
}

/// Install a Chrome trace-event sink at `path` (parent directories are
/// created). Sinks stack: a JSONL and a Chrome sink can record the same
/// run.
pub fn install_chrome(path: &Path) -> std::io::Result<()> {
    install(path, Format::Chrome)
}

fn write_raw(s: &mut Sink, record: &str) {
    if s.written >= MAX_EVENTS {
        s.dropped += 1;
        return;
    }
    let r = match s.format {
        Format::Jsonl => s
            .out
            .write_all(record.as_bytes())
            .and_then(|_| s.out.write_all(b"\n")),
        Format::Chrome => {
            let sep: &[u8] = if s.wrote_any { b",\n" } else { b"\n" };
            s.out
                .write_all(sep)
                .and_then(|_| s.out.write_all(record.as_bytes()))
        }
    };
    if r.is_ok() {
        s.wrote_any = true;
        s.written += 1;
    }
}

fn with_sinks(mut f: impl FnMut(&mut Sink)) {
    let mut g = sinks().lock().expect("trace sink lock");
    for s in g.iter_mut() {
        f(s);
    }
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// Emit one closed span (called from [`crate::span::SpanGuard`]'s drop).
/// `path` is the full span path; timestamps are ns since the trace
/// origin.
pub fn span_event(path: &[&'static str], start_ns: u64, end_ns: u64) {
    if !active() {
        return;
    }
    let thread = tid();
    let name = path.last().copied().unwrap_or("?");
    with_sinks(|s| {
        let record = match s.format {
            Format::Jsonl => format!(
                "{{\"type\":\"span\",\"path\":{},\"start_ns\":{},\"dur_ns\":{},\"tid\":{}}}",
                json_escape(&path.join(";")),
                start_ns,
                end_ns.saturating_sub(start_ns),
                thread,
            ),
            Format::Chrome => format!(
                "{{\"name\":{},\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                json_escape(name),
                thread,
                us(start_ns),
                us(end_ns.saturating_sub(start_ns)),
            ),
        };
        write_raw(s, &record);
    });
}

/// Emit a named slice on an explicit track (netsim shard windows).
/// `detail` lands in `args` (Chrome) / inline (JSONL); pass `""` to omit.
pub fn slice(name: &str, track: u32, start_ns: u64, end_ns: u64, events: u64) {
    if !active() {
        return;
    }
    with_sinks(|s| {
        let record = match s.format {
            Format::Jsonl => format!(
                "{{\"type\":\"slice\",\"name\":{},\"track\":{},\"start_ns\":{},\"dur_ns\":{},\"events\":{}}}",
                json_escape(name),
                track,
                start_ns,
                end_ns.saturating_sub(start_ns),
                events,
            ),
            Format::Chrome => format!(
                "{{\"name\":{},\"cat\":\"netsim\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"events\":{}}}}}",
                json_escape(name),
                track,
                us(start_ns),
                us(end_ns.saturating_sub(start_ns)),
                events,
            ),
        };
        write_raw(s, &record);
    });
}

/// Emit a process-scoped instant event (epoch barriers).
pub fn instant(name: &str, detail: u64) {
    if !active() {
        return;
    }
    let t = now_ns();
    let thread = tid();
    with_sinks(|s| {
        let record = match s.format {
            Format::Jsonl => format!(
                "{{\"type\":\"instant\",\"name\":{},\"at_ns\":{},\"detail\":{}}}",
                json_escape(name),
                t,
                detail,
            ),
            Format::Chrome => format!(
                "{{\"name\":{},\"cat\":\"netsim\",\"ph\":\"i\",\"s\":\"p\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"args\":{{\"detail\":{}}}}}",
                json_escape(name),
                thread,
                us(t),
                detail,
            ),
        };
        write_raw(s, &record);
    });
}

/// Current ns since the trace origin (for callers that time their own
/// slices).
pub fn clock_ns() -> u64 {
    now_ns()
}

/// Totals reported when a sink closes.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Events written to the file.
    pub written: u64,
    /// Events past [`MAX_EVENTS`], counted but not written.
    pub dropped: u64,
}

/// Close every installed sink: append a metric snapshot (JSONL) or
/// metadata (Chrome), the truncation summary, and flush. Returns `None`
/// if no sink was installed; with several sinks the summary totals are
/// summed.
pub fn finish() -> std::io::Result<Option<Summary>> {
    ACTIVE.store(false, Ordering::SeqCst);
    let drained: Vec<Sink> = {
        let mut g = sinks().lock().expect("trace sink lock");
        std::mem::take(&mut *g)
    };
    if drained.is_empty() {
        return Ok(None);
    }
    let mut total = Summary {
        written: 0,
        dropped: 0,
    };
    for mut s in drained {
        // Final metric snapshot: JSONL gets one line per metric; Chrome
        // gets a single metadata event (per-metric counters would pollute
        // tracks).
        if s.format == Format::Jsonl {
            for (name, v) in crate::metrics::snapshot() {
                let record = match v {
                    crate::metrics::MetricValue::Counter(n) => format!(
                        "{{\"type\":\"metric\",\"name\":{},\"kind\":\"counter\",\"value\":{}}}",
                        json_escape(name),
                        n
                    ),
                    crate::metrics::MetricValue::Gauge(n) => format!(
                        "{{\"type\":\"metric\",\"name\":{},\"kind\":\"gauge\",\"max\":{}}}",
                        json_escape(name),
                        n
                    ),
                    crate::metrics::MetricValue::Histogram { count, sum, .. } => format!(
                        "{{\"type\":\"metric\",\"name\":{},\"kind\":\"histogram\",\"count\":{},\"sum\":{}}}",
                        json_escape(name),
                        count,
                        sum
                    ),
                };
                // Metric lines bypass the event cap: they are bounded by
                // the registry size and the summary must stay trustworthy.
                let _ = s.out.write_all(record.as_bytes());
                let _ = s.out.write_all(b"\n");
            }
        }
        let summary = Summary {
            written: s.written,
            dropped: s.dropped,
        };
        match s.format {
            Format::Jsonl => {
                let line = format!(
                    "{{\"type\":\"summary\",\"events\":{},\"dropped\":{},\"max_events\":{}}}",
                    summary.written, summary.dropped, MAX_EVENTS
                );
                s.out.write_all(line.as_bytes())?;
                s.out.write_all(b"\n")?;
            }
            Format::Chrome => {
                let sep: &[u8] = if s.wrote_any { b",\n" } else { b"\n" };
                s.out.write_all(sep)?;
                let meta = format!(
                    "{{\"name\":\"trace_summary\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{{\"events\":{},\"dropped\":{},\"max_events\":{}}}}}",
                    summary.written, summary.dropped, MAX_EVENTS
                );
                s.out.write_all(meta.as_bytes())?;
                s.out.write_all(b"\n]\n")?;
            }
        }
        s.out.flush()?;
        if summary.dropped > 0 {
            eprintln!(
                "trace: event cap {MAX_EVENTS} reached; {} events dropped (written {})",
                summary.dropped, summary.written
            );
        }
        total.written += summary.written;
        total.dropped += summary.dropped;
    }
    Ok(Some(total))
}
