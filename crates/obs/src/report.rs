//! Run-report assembly: the span tree plus metric snapshots, serialized
//! as one JSON document, and a human-readable trace rendering for
//! `--trace`.
//!
//! The report is assembled *after* the instrumented work finishes (so
//! every thread-local span collector has flushed) and written wherever the
//! caller points it — `repro` defaults to `results/run_report.json`.

use crate::metrics::{self, MetricValue};
use crate::span::{self, SpanNode};
use serde_json::{json, Value};
use std::path::Path;

/// Builder for one run's report document.
///
/// Callers push named sections (meta, world summary, filter funnel, …) in
/// the order they should appear; [`RunReport::finish`] appends the span
/// tree and metric snapshot taken at that moment.
#[derive(Default)]
pub struct RunReport {
    sections: Vec<(String, Value)>,
}

impl RunReport {
    /// Start an empty report.
    pub fn new() -> RunReport {
        RunReport::default()
    }

    /// Append a named section (document order is insertion order).
    pub fn section(&mut self, name: &str, value: Value) {
        self.sections.push((name.to_string(), value));
    }

    /// Close the report: snapshot spans and metrics now and produce the
    /// full JSON document.
    pub fn finish(self) -> Value {
        let mut entries: Vec<(String, Value)> = self.sections;
        if crate::timeline::any() {
            entries.push(("timelines".to_string(), crate::timeline::timelines_json()));
        }
        entries.push(("spans".to_string(), span_tree_json()));
        entries.push(("metrics".to_string(), metrics_json()));
        Value::Object(entries)
    }

    /// [`RunReport::finish`] plus write to `path` (parent directories are
    /// created).
    pub fn write(self, path: &Path) -> std::io::Result<()> {
        let doc = self.finish();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let text = serde_json::to_string_pretty(&doc)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, text + "\n")
    }
}

fn node_json(n: &SpanNode) -> Value {
    json!({
        "name": n.name,
        "count": n.count,
        "total_ns": n.total_ns,
        "self_ns": n.self_ns,
        "window_ns": n.window_ns,
        "first_start_ns": n.first_start_ns,
        "children": Value::Array(n.children.iter().map(node_json).collect()),
    })
}

/// The aggregated span tree as JSON (see [`span::snapshot_tree`]).
pub fn span_tree_json() -> Value {
    Value::Array(span::snapshot_tree().iter().map(node_json).collect())
}

/// Every registered metric as a JSON object keyed by metric name.
pub fn metrics_json() -> Value {
    let entries = metrics::snapshot()
        .into_iter()
        .map(|(name, v)| {
            let value = match v {
                MetricValue::Counter(n) => json!({"type": "counter", "value": n}),
                MetricValue::Gauge(n) => json!({"type": "gauge", "max": n}),
                MetricValue::Histogram {
                    bounds,
                    buckets,
                    count,
                    sum,
                } => json!({
                    "type": "histogram",
                    "bounds": bounds,
                    "buckets": buckets,
                    "count": count,
                    "sum": sum,
                }),
            };
            (name.to_string(), value)
        })
        .collect();
    Value::Object(entries)
}

/// A live progress snapshot for long-running work, assembled from the
/// metric registry and the flushed span tree.
///
/// Counters and gauges are plain atomics, so their values here move while
/// instrumented work is still running; histograms are summarized to their
/// count and sum. Spans only appear after their root closes (collectors
/// flush at outermost-span exit), so the `spans` section reflects
/// *completed* units of work. The snapshot is process-wide by design —
/// `repro serve` exposes it per job-status request as "what the pipeline
/// has done so far", not as per-job attribution.
pub fn progress_snapshot() -> Value {
    let counters: Vec<(String, Value)> = metrics::snapshot()
        .into_iter()
        .map(|(name, v)| {
            let value = match v {
                MetricValue::Counter(n) => json!(n),
                MetricValue::Gauge(n) => json!(n),
                MetricValue::Histogram { count, sum, .. } => json!({"count": count, "sum": sum}),
            };
            (name.to_string(), value)
        })
        .collect();
    let spans: Vec<Value> = span::snapshot_tree()
        .iter()
        .map(|n| json!({"name": n.name, "count": n.count, "total_ns": n.total_ns}))
        .collect();
    json!({"counters": Value::Object(counters), "spans": spans})
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn render_node(out: &mut String, n: &SpanNode, depth: usize) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(&format!(
        "{}  count={} total={} self={} window={}\n",
        n.name,
        n.count,
        fmt_ns(n.total_ns),
        fmt_ns(n.self_ns),
        fmt_ns(n.window_ns),
    ));
    for c in &n.children {
        render_node(out, c, depth + 1);
    }
}

/// Render the current span tree as an indented human-readable listing
/// (what `repro --trace` prints to stderr).
pub fn render_trace() -> String {
    let mut out = String::new();
    for root in span::snapshot_tree() {
        render_node(&mut out, &root, 0);
    }
    out
}
