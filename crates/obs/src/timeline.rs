//! Deterministic sim-time timelines: epoch-bucketed series sampled on
//! *simulation* time, never wall clock.
//!
//! The run report's end-of-run aggregates say *how much* happened; the
//! `timelines` section says *when*. Every series here is a pure function
//! of the simulated event trace, which the sharded data plane already
//! guarantees is byte-identical at any `--threads`/`--shards` setting
//! (DESIGN.md §11) — so the section inherits that guarantee for free,
//! provided three rules hold:
//!
//! 1. **Sample on sim time only.** A point is keyed by the bucket of a
//!    simulation timestamp (or a canonical index, see [`Axis::Index`]),
//!    never by wall clock, thread id, or shard id.
//! 2. **Record shard-invariant quantities.** Anything derived from the
//!    physical shard layout (barrier waits, arena residency, actual
//!    handoff counts) is *not* timeline material — it goes to the trace
//!    export ([`crate::trace`]) and the `netsim.shard.*` metrics instead.
//!    Cross-shard traffic is therefore recorded against the *canonical
//!    partition* (link classes: what crosses fabric sites), which is the
//!    same at `--shards 1` and `--shards 8`.
//! 3. **Merge commutatively.** Recorders accumulate per-bucket integer
//!    sums (or difference-array deltas); merging is addition, so the
//!    order in which rayon workers or shards publish cannot show in the
//!    output. The final snapshot sorts by series name and bucket.
//!
//! ## Series shapes
//!
//! - **Rate** series count events per bucket (`netsim.events`,
//!   `netsim.access_bytes`): `add` at the event's sim time.
//! - **Level** series track a population over time via a difference
//!   array: `+n` at the bucket where a member enters, `-n` where it
//!   leaves, prefix-summed at snapshot. Queue depth and frames-in-flight
//!   use this: both endpoints (creation time, scheduled/arrival time)
//!   are known at creation, so no sampling loop is needed and the value
//!   at every bucket boundary is exact.
//! - **Index**-axis series replace sim time with a canonical small
//!   integer (e.g. IXP id) for quantities with no timeline of their own,
//!   like filter-funnel progress across the 22 studied IXPs.
//!
//! Workers record into a private [`TimelineRecorder`] (no locks) and
//! [`publish`] it into the process-wide registry when done; the report
//! layer serializes the registry with [`timelines_json`].

use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Bucket width for sim-time series: 6 simulated hours. A 120-day paper
/// campaign yields 480 buckets per series; test scale (40 days) 160.
pub const BUCKET_NS: u64 = 6 * 3_600 * 1_000_000_000;

/// Bucket index of a simulation timestamp.
#[inline]
pub fn bucket_of(sim_ns: u64) -> u64 {
    sim_ns / BUCKET_NS
}

/// What a series' values mean per bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Events (or bytes) per bucket; deltas are the values.
    Rate,
    /// Population level; deltas form a difference array, prefix-summed at
    /// snapshot into the level at each change point.
    Level,
}

/// What the bucket key of a series means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Simulation time, bucketed by [`BUCKET_NS`].
    SimTime,
    /// A canonical small-integer index (IXP id, sweep cell, …).
    Index,
}

/// One series' accumulated state: sparse per-bucket integer deltas.
#[derive(Debug, Clone)]
pub struct SeriesData {
    /// Value semantics (rate vs. level).
    pub kind: Kind,
    /// Key semantics (sim-time bucket vs. canonical index).
    pub axis: Axis,
    deltas: BTreeMap<u64, i64>,
}

impl SeriesData {
    fn new(kind: Kind, axis: Axis) -> SeriesData {
        SeriesData {
            kind,
            axis,
            deltas: BTreeMap::new(),
        }
    }

    fn add(&mut self, bucket: u64, n: i64) {
        if n != 0 {
            *self.deltas.entry(bucket).or_insert(0) += n;
        }
    }

    fn merge(&mut self, other: &SeriesData) {
        debug_assert_eq!(self.kind, other.kind, "series kind mismatch on merge");
        debug_assert_eq!(self.axis, other.axis, "series axis mismatch on merge");
        for (&b, &n) in &other.deltas {
            self.add(b, n);
        }
    }

    /// Points for serialization: `(bucket, value)` sorted by bucket.
    /// Rate series emit per-bucket sums; level series emit the
    /// prefix-summed level after each change point. Buckets whose delta
    /// nets to zero are elided for rates but kept for levels (a return
    /// to a previous level is information).
    pub fn points(&self) -> Vec<(u64, i64)> {
        match self.kind {
            Kind::Rate => self
                .deltas
                .iter()
                .filter(|(_, &n)| n != 0)
                .map(|(&b, &n)| (b, n))
                .collect(),
            Kind::Level => {
                let mut level = 0i64;
                self.deltas
                    .iter()
                    .map(|(&b, &n)| {
                        level += n;
                        (b, level)
                    })
                    .collect()
            }
        }
    }
}

/// A private, lock-free accumulator for one worker (a netsim shard, a
/// detection pass). Merge-or-publish when done.
#[derive(Debug, Default, Clone)]
pub struct TimelineRecorder {
    series: BTreeMap<&'static str, SeriesData>,
}

impl TimelineRecorder {
    /// An empty recorder.
    pub fn new() -> TimelineRecorder {
        TimelineRecorder::default()
    }

    /// No series recorded yet?
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    fn series_mut(&mut self, name: &'static str, kind: Kind, axis: Axis) -> &mut SeriesData {
        self.series
            .entry(name)
            .or_insert_with(|| SeriesData::new(kind, axis))
    }

    /// Count `n` events on the rate series `name` at sim time `sim_ns`.
    #[inline]
    pub fn rate(&mut self, name: &'static str, sim_ns: u64, n: u64) {
        self.series_mut(name, Kind::Rate, Axis::SimTime)
            .add(bucket_of(sim_ns), n as i64);
    }

    /// Like [`TimelineRecorder::rate`] but with a precomputed bucket —
    /// for hot paths that batch counts per bucket before flushing.
    #[inline]
    pub fn rate_bucket(&mut self, name: &'static str, bucket: u64, n: u64) {
        self.series_mut(name, Kind::Rate, Axis::SimTime)
            .add(bucket, n as i64);
    }

    /// Record that `n` members of the level series `name` exist from sim
    /// time `from_ns` until `to_ns` (difference-array entries at both
    /// bucket endpoints).
    #[inline]
    pub fn level(&mut self, name: &'static str, from_ns: u64, to_ns: u64, n: i64) {
        debug_assert!(from_ns <= to_ns, "level interval runs backwards");
        let s = self.series_mut(name, Kind::Level, Axis::SimTime);
        let (b0, b1) = (bucket_of(from_ns), bucket_of(to_ns));
        if b0 == b1 {
            return; // enters and leaves within one bucket: no visible change
        }
        s.add(b0, n);
        s.add(b1, -n);
    }

    /// Add `n` to the index-axis rate series `name` at canonical `index`.
    #[inline]
    pub fn index_add(&mut self, name: &'static str, index: u64, n: u64) {
        self.series_mut(name, Kind::Rate, Axis::Index)
            .add(index, n as i64);
    }

    /// Fold `other` into `self` (commutative, associative).
    pub fn merge(&mut self, other: &TimelineRecorder) {
        for (name, data) in &other.series {
            self.series
                .entry(name)
                .or_insert_with(|| SeriesData::new(data.kind, data.axis))
                .merge(data);
        }
    }

    /// A copy of one series' accumulated data, for re-publishing under a
    /// scoped name (per-IXP port utilization).
    pub fn series_data(&self, name: &'static str) -> Option<SeriesData> {
        self.series.get(name).cloned()
    }
}

fn global() -> &'static Mutex<BTreeMap<String, SeriesData>> {
    static GLOBAL: OnceLock<Mutex<BTreeMap<String, SeriesData>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Fold a worker's recorder into the process-wide registry. Order of
/// publication across threads cannot affect the final snapshot.
pub fn publish(rec: &TimelineRecorder) {
    if rec.is_empty() {
        return;
    }
    let mut g = global().lock().expect("timeline registry lock");
    for (name, data) in &rec.series {
        g.entry((*name).to_string())
            .or_insert_with(|| SeriesData::new(data.kind, data.axis))
            .merge(data);
    }
}

/// Publish one series under a dynamic (scoped) name, e.g.
/// `ixp.AMS-IX.port_util_bytes`.
pub fn publish_as(name: String, data: SeriesData) {
    let mut g = global().lock().expect("timeline registry lock");
    g.entry(name)
        .or_insert_with(|| SeriesData::new(data.kind, data.axis))
        .merge(&data);
}

/// Add one point to an index-axis series directly in the registry — for
/// low-frequency call sites (per-IXP funnel progress) that don't carry a
/// recorder. A no-op while collection is disabled.
pub fn index_point(name: &'static str, index: u64, n: u64) {
    if !crate::enabled() {
        return;
    }
    let mut g = global().lock().expect("timeline registry lock");
    g.entry(name.to_string())
        .or_insert_with(|| SeriesData::new(Kind::Rate, Axis::Index))
        .add(index, n as i64);
}

/// Any series published this run?
pub fn any() -> bool {
    !global().lock().expect("timeline registry lock").is_empty()
}

/// Clear the registry (tests and repeated in-process runs).
pub(crate) fn reset() {
    global().lock().expect("timeline registry lock").clear();
}

/// The `timelines` report section: deterministic JSON for every published
/// series, sorted by name, points sorted by bucket, all-integer values.
pub fn timelines_json() -> Value {
    let g = global().lock().expect("timeline registry lock");
    let series: Vec<(String, Value)> = g
        .iter()
        .filter_map(|(name, data)| {
            let points: Vec<Value> = data
                .points()
                .into_iter()
                .map(|(b, v)| Value::Array(vec![json!(b), json!(v)]))
                .collect();
            // A series whose deltas all cancelled (e.g. a level series
            // where every interval stayed inside one bucket) carries no
            // information; emitting it would only trip schema checks.
            if points.is_empty() {
                return None;
            }
            let kind = match data.kind {
                Kind::Rate => "rate",
                Kind::Level => "level",
            };
            let axis = match data.axis {
                Axis::SimTime => "sim_time",
                Axis::Index => "index",
            };
            Some((
                name.clone(),
                json!({
                    "kind": kind,
                    "axis": axis,
                    "points": Value::Array(points),
                }),
            ))
        })
        .collect();
    json!({
        "bucket_ns": BUCKET_NS,
        "series": Value::Object(series),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_series_sum_per_bucket() {
        let mut r = TimelineRecorder::new();
        r.rate("test.obs.rate", 0, 3);
        r.rate("test.obs.rate", BUCKET_NS - 1, 2);
        r.rate("test.obs.rate", BUCKET_NS, 7);
        let pts = r.series_data("test.obs.rate").unwrap().points();
        assert_eq!(pts, vec![(0, 5), (1, 7)]);
    }

    #[test]
    fn level_series_prefix_sum() {
        let mut r = TimelineRecorder::new();
        // Two members enter in bucket 0; one leaves in bucket 2, the
        // other in bucket 5.
        r.level("test.obs.level", 0, 2 * BUCKET_NS, 1);
        r.level("test.obs.level", 0, 5 * BUCKET_NS, 1);
        // A sub-bucket interval is invisible.
        r.level("test.obs.level", 0, BUCKET_NS / 2, 1);
        let pts = r.series_data("test.obs.level").unwrap().points();
        assert_eq!(pts, vec![(0, 2), (2, 1), (5, 0)]);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = TimelineRecorder::new();
        a.rate("test.obs.m", 0, 1);
        a.level("test.obs.l", 0, 3 * BUCKET_NS, 2);
        let mut b = TimelineRecorder::new();
        b.rate("test.obs.m", BUCKET_NS, 4);
        b.level("test.obs.l", BUCKET_NS, 2 * BUCKET_NS, 1);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(
            ab.series_data("test.obs.m").unwrap().points(),
            ba.series_data("test.obs.m").unwrap().points()
        );
        assert_eq!(
            ab.series_data("test.obs.l").unwrap().points(),
            ba.series_data("test.obs.l").unwrap().points()
        );
        assert_eq!(
            ab.series_data("test.obs.l").unwrap().points(),
            vec![(0, 2), (1, 3), (2, 2), (3, 0)]
        );
    }

    #[test]
    fn index_axis_points() {
        let mut r = TimelineRecorder::new();
        r.index_add("test.obs.idx", 7, 10);
        r.index_add("test.obs.idx", 3, 5);
        let pts = r.series_data("test.obs.idx").unwrap().points();
        assert_eq!(pts, vec![(3, 5), (7, 10)]);
    }
}
