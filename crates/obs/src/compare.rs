//! Bench-run comparison: the in-process half of the perf-regression
//! sentinel.
//!
//! `repro bench --compare OLD.json` parses two `rp-bench/1` documents
//! (the fresh run and a saved one from the *same host*), pairs benches
//! by name, and flags raw `ns_per_op` ratios outside a tolerance band.
//! Same-host comparison needs no normalization; the cross-host trend
//! gate over committed `BENCH_*.json` files lives in
//! `scripts/check_bench_trend.py`, which additionally normalizes by the
//! `event_queue_spread` microbench to cancel machine speed.

use serde_json::Value;

/// Default acceptance band for same-host comparisons: a bench is a
/// regression when `new > old * (1 + DEFAULT_TOLERANCE)`.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// One bench extracted from an `rp-bench/1` document.
#[derive(Debug, Clone)]
pub struct BenchPoint {
    /// Bench name (`probe_all`, `event_queue_spread`, …).
    pub name: String,
    /// Mean wall time per operation, ns.
    pub ns_per_op: f64,
}

/// Parse the `benches` array of an `rp-bench/1` document.
pub fn parse_bench(doc: &Value) -> Result<Vec<BenchPoint>, String> {
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some("rp-bench/1") => {}
        Some(other) => return Err(format!("unsupported bench schema {other:?}")),
        None => return Err("missing \"schema\" key (not an rp-bench document?)".to_string()),
    }
    let benches = doc
        .get("benches")
        .and_then(|b| b.as_array())
        .ok_or("missing \"benches\" array")?;
    let mut out = Vec::new();
    for b in benches {
        let name = b
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or("bench entry missing \"name\"")?
            .to_string();
        let ns_per_op = b
            .get("ns_per_op")
            .and_then(|n| n.as_f64())
            .ok_or_else(|| format!("bench {name} missing numeric \"ns_per_op\""))?;
        if !(ns_per_op.is_finite() && ns_per_op > 0.0) {
            return Err(format!("bench {name} has non-positive ns_per_op"));
        }
        out.push(BenchPoint { name, ns_per_op });
    }
    if out.is_empty() {
        return Err("empty \"benches\" array".to_string());
    }
    Ok(out)
}

/// One paired bench in a comparison.
#[derive(Debug, Clone)]
pub struct DeltaRow {
    /// Bench name.
    pub name: String,
    /// Baseline ns/op.
    pub old_ns: f64,
    /// Fresh ns/op.
    pub new_ns: f64,
    /// `new / old`; above 1 is slower.
    pub ratio: f64,
}

/// Result of pairing two bench runs by name.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Benches present in both runs, in the new run's order.
    pub rows: Vec<DeltaRow>,
    /// Bench names only in the new run (no baseline — reported, not gated).
    pub only_new: Vec<String>,
    /// Bench names only in the old run (retired — reported, not gated).
    pub only_old: Vec<String>,
}

/// Pair `old` and `new` `rp-bench/1` documents by bench name.
pub fn compare(old: &Value, new: &Value) -> Result<Comparison, String> {
    let old_pts = parse_bench(old)?;
    let new_pts = parse_bench(new)?;
    let mut rows = Vec::new();
    let mut only_new = Vec::new();
    for np in &new_pts {
        match old_pts.iter().find(|op| op.name == np.name) {
            Some(op) => rows.push(DeltaRow {
                name: np.name.clone(),
                old_ns: op.ns_per_op,
                new_ns: np.ns_per_op,
                ratio: np.ns_per_op / op.ns_per_op,
            }),
            None => only_new.push(np.name.clone()),
        }
    }
    let only_old = old_pts
        .iter()
        .filter(|op| !new_pts.iter().any(|np| np.name == op.name))
        .map(|op| op.name.clone())
        .collect();
    Ok(Comparison {
        rows,
        only_new,
        only_old,
    })
}

impl Comparison {
    /// Rows slower than `1 + tolerance`.
    pub fn regressions(&self, tolerance: f64) -> Vec<&DeltaRow> {
        self.rows
            .iter()
            .filter(|r| r.ratio > 1.0 + tolerance)
            .collect()
    }

    /// Human-readable table with a verdict column.
    pub fn render(&self, tolerance: f64) -> String {
        fn fmt_ns(ns: f64) -> String {
            if ns >= 1e9 {
                format!("{:.2}s", ns / 1e9)
            } else if ns >= 1e6 {
                format!("{:.1}ms", ns / 1e6)
            } else if ns >= 1e3 {
                format!("{:.1}µs", ns / 1e3)
            } else {
                format!("{ns:.1}ns")
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>12} {:>12} {:>8}  verdict (tolerance {:.0}%)\n",
            "bench",
            "old/op",
            "new/op",
            "ratio",
            tolerance * 100.0
        ));
        for r in &self.rows {
            let verdict = if r.ratio > 1.0 + tolerance {
                "REGRESSION"
            } else if r.ratio < 1.0 / (1.0 + tolerance) {
                "improved"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "{:<24} {:>12} {:>12} {:>7.3}x  {}\n",
                r.name,
                fmt_ns(r.old_ns),
                fmt_ns(r.new_ns),
                r.ratio,
                verdict
            ));
        }
        for n in &self.only_new {
            out.push_str(&format!("{n:<24} (new bench, no baseline)\n"));
        }
        for n in &self.only_old {
            out.push_str(&format!("{n:<24} (baseline only, retired)\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn doc(pairs: &[(&str, f64)]) -> Value {
        let benches: Vec<Value> = pairs
            .iter()
            .map(|(n, v)| json!({"name": *n, "ops": 1, "ns_per_op": *v}))
            .collect();
        json!({"schema": "rp-bench/1", "benches": Value::Array(benches)})
    }

    #[test]
    fn flags_regressions_past_tolerance() {
        let old = doc(&[("a", 100.0), ("b", 100.0)]);
        let new = doc(&[("a", 110.0), ("b", 140.0)]);
        let cmp = compare(&old, &new).unwrap();
        let regs = cmp.regressions(0.25);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "b");
    }

    #[test]
    fn unpaired_benches_are_reported_not_gated() {
        let old = doc(&[("a", 100.0), ("gone", 5.0)]);
        let new = doc(&[("a", 100.0), ("fresh", 7.0)]);
        let cmp = compare(&old, &new).unwrap();
        assert_eq!(cmp.only_new, vec!["fresh".to_string()]);
        assert_eq!(cmp.only_old, vec!["gone".to_string()]);
        assert!(cmp.regressions(0.25).is_empty());
    }

    #[test]
    fn rejects_wrong_schema() {
        let bad = json!({"schema": "rp-bench/2", "benches": []});
        assert!(compare(&bad, &bad).is_err());
    }
}
