//! Hierarchical spans with monotonic timing and thread-aware aggregation.
//!
//! A span is a named interval of wall-clock time. Spans aggregate by
//! *path* — the stack of names from the root — not by instance: the 22
//! `core.campaign.probe_ixp` calls of a campaign fold into one node with
//! `count = 22`. Aggregation is two-level:
//!
//! 1. Every thread owns a local collector (a path → stats map). Opening a
//!    span pushes its name on the thread's stack; closing records the
//!    elapsed time under the full path.
//! 2. When the *outermost* span on a thread closes (its stack empties),
//!    the local collector merges into the process-wide aggregate under one
//!    short mutex hold. Hot span opens/closes therefore never contend.
//!
//! Worker threads spawned inside a parallel region start with an empty
//! stack; [`span_under`] hands them the parent's path explicitly, so their
//! spans land at the same tree position as they would serially. With one
//! worker the region runs on the calling thread, whose stack already holds
//! the parent — `span_under` then nests naturally and the aggregated paths
//! are **identical at every thread count**.
//!
//! ## Aggregated statistics
//!
//! Per node: `count` (closes), `total_ns` (busy time summed across calls
//! *and threads* — CPU-style, so parallel children may sum past their
//! parent's wall time), and a wall-clock *window* `[first_start, last_end]`.
//! Every child interval nests inside some parent interval, so the child's
//! aggregated window always sits inside the parent's — the well-formedness
//! invariant `tests/report_schema.rs` checks. `self_ns` (total minus
//! children's totals, saturating at zero under parallel children) is
//! derived at snapshot time.
//!
//! Guards must drop in LIFO order (bind them to scopes); an out-of-order
//! drop misattributes timings but cannot corrupt memory or results.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A cloneable, thread-safe handle to a span's position in the tree; hand
/// it to worker threads via [`span_under`].
pub type SpanPath = Arc<Vec<&'static str>>;

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, Copy)]
struct Agg {
    count: u64,
    busy_ns: u64,
    first_start_ns: u64,
    last_end_ns: u64,
}

impl Agg {
    fn new() -> Agg {
        Agg {
            count: 0,
            busy_ns: 0,
            first_start_ns: u64::MAX,
            last_end_ns: 0,
        }
    }

    fn record(&mut self, start_ns: u64, end_ns: u64) {
        self.count += 1;
        self.busy_ns += end_ns.saturating_sub(start_ns);
        self.first_start_ns = self.first_start_ns.min(start_ns);
        self.last_end_ns = self.last_end_ns.max(end_ns);
    }

    fn merge(&mut self, other: &Agg) {
        self.count += other.count;
        self.busy_ns += other.busy_ns;
        self.first_start_ns = self.first_start_ns.min(other.first_start_ns);
        self.last_end_ns = self.last_end_ns.max(other.last_end_ns);
    }
}

#[derive(Default)]
struct Local {
    /// Path prefix inherited from a cross-thread parent ([`span_under`]).
    base: Vec<&'static str>,
    /// Names of the spans currently open on this thread.
    stack: Vec<&'static str>,
    /// Locally aggregated stats, merged into [`GLOBAL`] when `stack`
    /// empties.
    agg: HashMap<Vec<&'static str>, Agg>,
}

thread_local! {
    static LOCAL: RefCell<Local> = RefCell::new(Local::default());
}

static ORIGIN: OnceLock<Instant> = OnceLock::new();
static GLOBAL: OnceLock<Mutex<HashMap<Vec<&'static str>, Agg>>> = OnceLock::new();

/// Fix the process-wide monotonic origin (called by [`crate::enable`]).
pub(crate) fn init_origin() {
    ORIGIN.get_or_init(Instant::now);
}

fn offset_ns(at: Instant) -> u64 {
    let origin = *ORIGIN.get_or_init(Instant::now);
    at.saturating_duration_since(origin).as_nanos() as u64
}

/// Now, as ns since the shared monotonic origin — the one timebase spans
/// and the trace export agree on.
pub(crate) fn now_offset_ns() -> u64 {
    offset_ns(Instant::now())
}

fn global() -> &'static Mutex<HashMap<Vec<&'static str>, Agg>> {
    GLOBAL.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Clear the process-wide aggregate and the current thread's collector.
pub(crate) fn reset() {
    global().lock().expect("span aggregate lock").clear();
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        l.base.clear();
        l.stack.clear();
        l.agg.clear();
    });
}

/// RAII guard for an open span; records on drop.
#[must_use = "a span measures the scope its guard lives in"]
pub struct SpanGuard {
    start: Option<Instant>,
}

impl SpanGuard {
    /// The full path of this span, for parenting work on other threads
    /// (see [`span_under`]). Empty when collection was off at open time.
    pub fn path(&self) -> SpanPath {
        if self.start.is_none() {
            return Arc::new(Vec::new());
        }
        LOCAL.with(|l| {
            let l = l.borrow();
            Arc::new(l.base.iter().chain(l.stack.iter()).copied().collect())
        })
    }
}

/// Open a span as a child of the thread's innermost open span (a root if
/// none). Inert while collection is disabled.
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { start: None };
    }
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        l.stack.push(name);
        if crate::profile::armed() {
            let path: Vec<&'static str> = l.base.iter().chain(l.stack.iter()).copied().collect();
            crate::profile::record_stack(&path);
        }
    });
    SpanGuard {
        start: Some(Instant::now()),
    }
}

/// Open a span under an explicit parent path. On a thread with no open
/// span (a parallel worker) the parent's path is adopted as the prefix; on
/// a thread that already holds open spans (the serial or single-worker
/// case) this nests naturally and `parent` is ignored — both give the same
/// aggregated path. Inert while collection is disabled.
pub fn span_under(parent: &SpanPath, name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { start: None };
    }
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        if l.stack.is_empty() {
            l.base = parent.as_ref().clone();
        }
        l.stack.push(name);
        if crate::profile::armed() {
            let path: Vec<&'static str> = l.base.iter().chain(l.stack.iter()).copied().collect();
            crate::profile::record_stack(&path);
        }
    });
    SpanGuard {
        start: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let start_ns = offset_ns(start);
        let end_ns = offset_ns(Instant::now());
        crate::metrics::span_duration_histogram()
            .observe(end_ns.saturating_sub(start_ns) as f64 / 1_000.0);
        let (flush, traced) = LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            let key: Vec<&'static str> = l.base.iter().chain(l.stack.iter()).copied().collect();
            let traced = crate::trace::active().then(|| key.clone());
            l.agg
                .entry(key)
                .or_insert_with(Agg::new)
                .record(start_ns, end_ns);
            l.stack.pop();
            if crate::profile::armed() {
                let path: Vec<&'static str> =
                    l.base.iter().chain(l.stack.iter()).copied().collect();
                crate::profile::record_stack(&path);
            }
            let flush = if l.stack.is_empty() {
                l.base.clear();
                Some(l.agg.drain().collect::<Vec<_>>())
            } else {
                None
            };
            (flush, traced)
        });
        if let Some(path) = traced {
            crate::trace::span_event(&path, start_ns, end_ns);
        }
        if let Some(entries) = flush {
            let mut g = global().lock().expect("span aggregate lock");
            for (key, agg) in entries {
                g.entry(key).or_insert_with(Agg::new).merge(&agg);
            }
        }
    }
}

/// One aggregated node of the span tree snapshot.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Last path element (the span's own name).
    pub name: String,
    /// Number of closes recorded at this path.
    pub count: u64,
    /// Busy time summed over all calls and threads, ns.
    pub total_ns: u64,
    /// `total_ns` minus the children's `total_ns`, saturating at zero
    /// (parallel children can sum past the parent's wall time).
    pub self_ns: u64,
    /// Wall-clock window `last_end - first_start`, ns. Children's windows
    /// nest inside their parent's.
    pub window_ns: u64,
    /// First open, ns since the collection origin (drives display order).
    pub first_start_ns: u64,
    /// Child nodes, ordered by first open.
    pub children: Vec<SpanNode>,
}

#[derive(Default)]
struct TreeTmp {
    agg: Option<Agg>,
    children: BTreeMap<&'static str, TreeTmp>,
}

fn finish(name: &str, tmp: TreeTmp) -> SpanNode {
    let mut children: Vec<SpanNode> = tmp
        .children
        .into_iter()
        .map(|(n, t)| finish(n, t))
        .collect();
    children.sort_by_key(|c| c.first_start_ns);
    // A node observed only through its children (its own closes raced a
    // process exit, or instrumentation skipped the intermediate level)
    // synthesizes its stats from them so the tree stays well-formed.
    let agg = tmp.agg.unwrap_or_else(|| {
        let mut a = Agg::new();
        for c in &children {
            a.count += c.count;
            a.busy_ns += c.total_ns;
            a.first_start_ns = a.first_start_ns.min(c.first_start_ns);
            a.last_end_ns = a.last_end_ns.max(c.first_start_ns + c.window_ns);
        }
        a
    });
    let children_busy: u64 = children.iter().map(|c| c.total_ns).sum();
    SpanNode {
        name: name.to_string(),
        count: agg.count,
        total_ns: agg.busy_ns,
        self_ns: agg.busy_ns.saturating_sub(children_busy),
        window_ns: agg.last_end_ns.saturating_sub(agg.first_start_ns),
        first_start_ns: if agg.first_start_ns == u64::MAX {
            0
        } else {
            agg.first_start_ns
        },
        children,
    }
}

/// Snapshot the aggregated span tree (roots ordered by first open).
///
/// Only *flushed* collectors contribute: take the snapshot after the
/// outermost span of interest has closed.
pub fn snapshot_tree() -> Vec<SpanNode> {
    let g = global().lock().expect("span aggregate lock");
    let mut root = TreeTmp::default();
    for (path, agg) in g.iter() {
        let mut node = &mut root;
        for &part in path {
            node = node.children.entry(part).or_default();
        }
        node.agg = Some(*agg);
    }
    drop(g);
    let mut roots: Vec<SpanNode> = root
        .children
        .into_iter()
        .map(|(n, t)| finish(n, t))
        .collect();
    roots.sort_by_key(|c| c.first_start_ns);
    roots
}
