//! Process-wide metrics registry: counters, high-water-mark gauges, and
//! fixed-bucket histograms.
//!
//! Handles are `&'static` — registration leaks one small allocation per
//! distinct name (bounded by the instrumentation sites in the codebase) so
//! the hot path touches only lock-free atomics. Names follow the
//! `<crate>.<subsystem>.<name>` convention. Use the [`crate::counter!`],
//! [`crate::gauge!`], and [`crate::histogram!`] macros at call sites: they
//! cache the handle in a per-site `OnceLock`, so the registry lock is taken
//! once per site per process.
//!
//! All mutators are gated on [`crate::enabled`]; while collection is off
//! they cost one relaxed load and a branch.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Histogram bounds for round-trip times in milliseconds (upper edges;
/// values above the last bound land in an overflow bucket).
pub const RTT_MS_BUCKETS: &[f64] = &[
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 150.0, 200.0, 300.0, 500.0, 1000.0,
];

/// Histogram bounds for span durations in microseconds — 10 µs up to
/// 10 minutes, roughly log-spaced.
pub const DURATION_US_BUCKETS: &[f64] = &[
    10.0,
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
    10_000_000.0,
    60_000_000.0,
    600_000_000.0,
];

/// Histogram bounds for coarse work units in milliseconds — sweep tasks,
/// world builds, probing campaigns. Spans hundreds of microseconds (a
/// method-only re-analysis) up to tens of minutes (a paper-scale replicate),
/// roughly log-spaced.
pub const TASK_MS_BUCKETS: &[f64] = &[
    1.0,
    5.0,
    20.0,
    100.0,
    500.0,
    2_000.0,
    10_000.0,
    60_000.0,
    300_000.0,
    1_200_000.0,
];

/// A monotonically increasing event counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. A no-op while collection is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A high-water-mark gauge: keeps the maximum of every recorded value.
#[derive(Debug)]
pub struct Gauge {
    max: AtomicU64,
}

impl Gauge {
    /// Raise the high-water mark to `v` if larger. A no-op while
    /// collection is disabled.
    #[inline]
    pub fn record_max(&self, v: u64) {
        if crate::enabled() {
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current high-water mark (zero if nothing recorded).
    pub fn get(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram. Bucket `i` counts observations `≤ bounds[i]`
/// (first matching bound); one extra overflow bucket catches the rest.
/// Tracks total count and an approximate sum (milli-units, so fractional
/// RTTs accumulate without floats in the atomic).
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_milli: AtomicU64,
}

impl Histogram {
    /// Record one observation. A no-op while collection is disabled.
    #[inline]
    pub fn observe(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let milli = if v.is_finite() && v > 0.0 {
            (v * 1_000.0) as u64
        } else {
            0
        };
        self.sum_milli.fetch_add(milli, Ordering::Relaxed);
    }

    /// Upper bucket edges this histogram was registered with.
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Approximate sum of observations (milli-unit resolution).
    pub fn sum(&self) -> f64 {
        self.sum_milli.load(Ordering::Relaxed) as f64 / 1_000.0
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_milli.store(0, Ordering::Relaxed);
    }
}

/// One documented metric: the source of truth behind `METRICS.md`.
///
/// Every production metric name must appear here with its kind; the
/// registration functions enforce it (names under the `test.` prefix are
/// exempt), and `crates/obs/tests/metrics_doc.rs` asserts `METRICS.md`
/// renders exactly [`catalog_markdown`]. Adding a metric therefore means
/// adding a catalog row and regenerating the doc — the two cannot drift.
#[derive(Debug, Clone, Copy)]
pub struct CatalogEntry {
    /// Metric name (`<crate>.<subsystem>.<name>`).
    pub name: &'static str,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: &'static str,
    /// Unit / scale of the recorded values.
    pub scale: &'static str,
    /// One-line meaning.
    pub doc: &'static str,
}

/// Every production metric, sorted by name.
pub const CATALOG: &[CatalogEntry] = &[
    CatalogEntry {
        name: "core.campaign.interfaces_probed",
        kind: "counter",
        scale: "interfaces",
        doc: "Listed member interfaces probed across all campaigns",
    },
    CatalogEntry {
        name: "core.campaign.ixps_probed",
        kind: "counter",
        scale: "IXPs",
        doc: "Studied IXPs whose probing campaign ran (22 per full study)",
    },
    CatalogEntry {
        name: "core.campaign.rtt_ms",
        kind: "histogram",
        scale: "ms",
        doc: "Per-probe round-trip times from the vantage looking glasses",
    },
    CatalogEntry {
        name: "core.filters.analyzed",
        kind: "counter",
        scale: "interfaces",
        doc: "Interfaces surviving all six detection filters",
    },
    CatalogEntry {
        name: "core.filters.discard.asn_change",
        kind: "counter",
        scale: "interfaces",
        doc: "Discards: interface ASN changed between campaign snapshots",
    },
    CatalogEntry {
        name: "core.filters.discard.lg_consistent",
        kind: "counter",
        scale: "interfaces",
        doc: "Discards: looking-glass RTTs disagree beyond the closeness bound",
    },
    CatalogEntry {
        name: "core.filters.discard.rtt_consistent",
        kind: "counter",
        scale: "interfaces",
        doc: "Discards: RTT samples inconsistent across the campaign window",
    },
    CatalogEntry {
        name: "core.filters.discard.sample_size",
        kind: "counter",
        scale: "interfaces",
        doc: "Discards: too few RTT samples to classify",
    },
    CatalogEntry {
        name: "core.filters.discard.ttl_match",
        kind: "counter",
        scale: "interfaces",
        doc: "Discards: reply TTL matches no plausible initial TTL",
    },
    CatalogEntry {
        name: "core.filters.discard.ttl_switch",
        kind: "counter",
        scale: "interfaces",
        doc: "Discards: TTL indicates the reply crossed the IXP switch twice",
    },
    CatalogEntry {
        name: "core.filters.probed",
        kind: "counter",
        scale: "interfaces",
        doc: "Interfaces entering the filter funnel (funnel top)",
    },
    CatalogEntry {
        name: "core.fork.deltas_applied",
        kind: "counter",
        scale: "deltas",
        doc: "Deltas applied to copy-on-write world forks",
    },
    CatalogEntry {
        name: "core.fork.forks",
        kind: "counter",
        scale: "forks",
        doc: "Copy-on-write world forks created",
    },
    CatalogEntry {
        name: "core.fork.probe_recomputed",
        kind: "counter",
        scale: "IXPs",
        doc: "Incremental probes that re-ran an IXP's campaign (dirty or unseeded)",
    },
    CatalogEntry {
        name: "core.fork.probe_reused",
        kind: "counter",
        scale: "IXPs",
        doc: "Incremental probes that reused the fork parent's samples for an IXP",
    },
    CatalogEntry {
        name: "core.memo.probe_hit",
        kind: "counter",
        scale: "lookups",
        doc: "Campaign probe-set memo hits (reused a prior identical campaign)",
    },
    CatalogEntry {
        name: "core.memo.probe_miss",
        kind: "counter",
        scale: "lookups",
        doc: "Campaign probe-set memo misses (campaign actually ran)",
    },
    CatalogEntry {
        name: "core.memo.world_bytes",
        kind: "gauge",
        scale: "bytes",
        doc: "High-water estimated bytes resident in the world pool",
    },
    CatalogEntry {
        name: "core.memo.world_evict",
        kind: "counter",
        scale: "worlds",
        doc: "World-pool entries evicted by the LRU entry/byte bounds",
    },
    CatalogEntry {
        name: "core.memo.world_hit",
        kind: "counter",
        scale: "lookups",
        doc: "World-build memo hits (reused a prior identical world)",
    },
    CatalogEntry {
        name: "core.memo.world_miss",
        kind: "counter",
        scale: "lookups",
        doc: "World-build memo misses (world actually built)",
    },
    CatalogEntry {
        name: "core.offload.cone_cache.hits",
        kind: "counter",
        scale: "lookups",
        doc: "Customer-cone cache hits during offload ranking",
    },
    CatalogEntry {
        name: "core.offload.cone_cache.misses",
        kind: "counter",
        scale: "lookups",
        doc: "Customer-cone cache misses (cone computed from scratch)",
    },
    CatalogEntry {
        name: "core.offload.greedy.reevaluations",
        kind: "counter",
        scale: "evaluations",
        doc: "Lazy-greedy (CELF) marginal-gain reevaluations in greedy_by",
    },
    CatalogEntry {
        name: "econ.fit.calls",
        kind: "counter",
        scale: "calls",
        doc: "Exponential-decay fits performed (econ eq. 14 pipeline)",
    },
    CatalogEntry {
        name: "econ.fit.points",
        kind: "counter",
        scale: "points",
        doc: "Data points consumed across all decay fits",
    },
    CatalogEntry {
        name: "netsim.link.queue_depth_hwm",
        kind: "gauge",
        scale: "events",
        doc: "High-water mark of any shard's pending event-queue depth",
    },
    CatalogEntry {
        name: "netsim.shard.barrier_wait_ns",
        kind: "gauge",
        scale: "ns",
        doc: "Worst cumulative wall time a run spent at epoch barriers",
    },
    CatalogEntry {
        name: "netsim.shard.barriers",
        kind: "counter",
        scale: "rounds",
        doc: "Epoch-barrier rounds executed by sharded runs",
    },
    CatalogEntry {
        name: "netsim.shard.count",
        kind: "gauge",
        scale: "shards",
        doc: "Largest shard count any network ran with",
    },
    CatalogEntry {
        name: "netsim.shard.events_max",
        kind: "gauge",
        scale: "events",
        doc: "Largest per-shard event count (load-balance indicator)",
    },
    CatalogEntry {
        name: "netsim.shard.handoffs",
        kind: "counter",
        scale: "frames",
        doc: "Frames handed across shard boundaries at epoch barriers",
    },
    CatalogEntry {
        name: "netsim.sim.events_processed",
        kind: "counter",
        scale: "events",
        doc: "Simulation events dispatched across all networks",
    },
    CatalogEntry {
        name: "netsim.sim.frames_dropped_unconnected",
        kind: "counter",
        scale: "frames",
        doc: "Frames dropped at ports with no attached link",
    },
    CatalogEntry {
        name: "obs.span.duration_us",
        kind: "histogram",
        scale: "µs",
        doc: "Duration of every closed span (all paths pooled)",
    },
    CatalogEntry {
        name: "scenario.cells",
        kind: "counter",
        scale: "cells",
        doc: "Sweep cells expanded from scenario specs",
    },
    CatalogEntry {
        name: "scenario.replicates",
        kind: "counter",
        scale: "replicates",
        doc: "Monte-Carlo replicates requested per sweep",
    },
    CatalogEntry {
        name: "scenario.task_ms",
        kind: "histogram",
        scale: "ms",
        doc: "Wall time of each (world-group × replicate) sweep task",
    },
    CatalogEntry {
        name: "scenario.world_groups",
        kind: "counter",
        scale: "groups",
        doc: "Distinct world configurations a sweep built (cells sharing a world)",
    },
    CatalogEntry {
        name: "server.http.errors",
        kind: "counter",
        scale: "responses",
        doc: "HTTP error responses (status >= 400) returned by repro serve",
    },
    CatalogEntry {
        name: "server.http.requests",
        kind: "counter",
        scale: "requests",
        doc: "HTTP connections handled by repro serve",
    },
    CatalogEntry {
        name: "server.jobs.cancelled",
        kind: "counter",
        scale: "jobs",
        doc: "Queued jobs cancelled before a worker picked them up",
    },
    CatalogEntry {
        name: "server.jobs.completed",
        kind: "counter",
        scale: "jobs",
        doc: "Jobs that ran to completion (state done)",
    },
    CatalogEntry {
        name: "server.jobs.deduped",
        kind: "counter",
        scale: "jobs",
        doc: "Submissions answered by an existing job with the same spec fingerprint",
    },
    CatalogEntry {
        name: "server.jobs.failed",
        kind: "counter",
        scale: "jobs",
        doc: "Jobs whose run panicked or whose result could not be flushed",
    },
    CatalogEntry {
        name: "server.jobs.id_collision",
        kind: "counter",
        scale: "jobs",
        doc: "Submissions whose FNV-64 job id matched an existing job with a different spec (re-id'd with a salted suffix)",
    },
    CatalogEntry {
        name: "server.jobs.rejected",
        kind: "counter",
        scale: "jobs",
        doc: "Submissions refused with 429 because the pending queue was full",
    },
    CatalogEntry {
        name: "server.jobs.run_ms",
        kind: "histogram",
        scale: "ms",
        doc: "Wall time each job spent running on a worker",
    },
    CatalogEntry {
        name: "server.jobs.submitted",
        kind: "counter",
        scale: "jobs",
        doc: "Job submissions accepted into the pending queue",
    },
    CatalogEntry {
        name: "server.queue.depth_hwm",
        kind: "gauge",
        scale: "jobs",
        doc: "High-water mark of the pending-job queue depth",
    },
    CatalogEntry {
        name: "testkit.faults.injected",
        kind: "counter",
        scale: "faults",
        doc: "Faults injected across all faulted check arms",
    },
    CatalogEntry {
        name: "testkit.invariants.checks",
        kind: "counter",
        scale: "checks",
        doc: "Metamorphic invariant trials executed by repro check",
    },
    CatalogEntry {
        name: "testkit.invariants.violations",
        kind: "counter",
        scale: "violations",
        doc: "Invariant trials that failed (nonzero fails the check)",
    },
];

/// The catalog rendered as the markdown table `METRICS.md` embeds
/// between its `BEGIN/END GENERATED` markers.
pub fn catalog_markdown() -> String {
    let mut out = String::from("| name | kind | scale | meaning |\n|---|---|---|---|\n");
    for e in CATALOG {
        out.push_str(&format!(
            "| `{}` | {} | {} | {} |\n",
            e.name, e.kind, e.scale, e.doc
        ));
    }
    out
}

/// Registration gate: every production metric must be cataloged with the
/// right kind so `METRICS.md` cannot drift from the live registry.
/// `test.`-prefixed names (unit-test fixtures) are exempt.
fn assert_cataloged(name: &str, kind: &str) {
    if name.starts_with("test.") {
        return;
    }
    match CATALOG.iter().find(|e| e.name == name) {
        Some(e) if e.kind == kind => {}
        Some(e) => panic!(
            "metric {name} registered as {kind} but cataloged as {} — fix rp_obs::metrics::CATALOG",
            e.kind
        ),
        None => panic!(
            "metric {name} is not in rp_obs::metrics::CATALOG — add an entry and update METRICS.md"
        ),
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Resolve (or register) the counter `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn counter(name: &'static str) -> &'static Counter {
    assert_cataloged(name, "counter");
    let mut reg = registry().lock().expect("metrics registry lock");
    match reg.entry(name).or_insert_with(|| {
        Metric::Counter(Box::leak(Box::new(Counter {
            value: AtomicU64::new(0),
        })))
    }) {
        Metric::Counter(c) => c,
        _ => panic!("metric {name} already registered with a different kind"),
    }
}

/// Resolve (or register) the gauge `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn gauge(name: &'static str) -> &'static Gauge {
    assert_cataloged(name, "gauge");
    let mut reg = registry().lock().expect("metrics registry lock");
    match reg.entry(name).or_insert_with(|| {
        Metric::Gauge(Box::leak(Box::new(Gauge {
            max: AtomicU64::new(0),
        })))
    }) {
        Metric::Gauge(g) => g,
        _ => panic!("metric {name} already registered with a different kind"),
    }
}

/// Resolve (or register) the histogram `name` with the given bucket
/// bounds. The bounds of the first registration win.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn histogram(name: &'static str, bounds: &'static [f64]) -> &'static Histogram {
    assert_cataloged(name, "histogram");
    let mut reg = registry().lock().expect("metrics registry lock");
    match reg.entry(name).or_insert_with(|| {
        let buckets: Box<[AtomicU64]> = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Metric::Histogram(Box::leak(Box::new(Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_milli: AtomicU64::new(0),
        })))
    }) {
        Metric::Histogram(h) => h,
        _ => panic!("metric {name} already registered with a different kind"),
    }
}

/// The shared histogram every closed span feeds its duration into (µs).
pub fn span_duration_histogram() -> &'static Histogram {
    static CELL: OnceLock<&'static Histogram> = OnceLock::new();
    CELL.get_or_init(|| histogram("obs.span.duration_us", DURATION_US_BUCKETS))
}

/// A point-in-time copy of one registered metric's value.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge high-water mark.
    Gauge(u64),
    /// Histogram state: upper bounds, per-bucket counts (last = overflow),
    /// total count, approximate sum.
    Histogram {
        /// Upper bucket edges.
        bounds: &'static [f64],
        /// Per-bucket counts; the last entry is the overflow bucket.
        buckets: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Approximate sum of observations.
        sum: f64,
    },
}

/// Snapshot every registered metric, sorted by name.
pub fn snapshot() -> Vec<(&'static str, MetricValue)> {
    let reg = registry().lock().expect("metrics registry lock");
    reg.iter()
        .map(|(&name, m)| {
            let v = match m {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                Metric::Histogram(h) => MetricValue::Histogram {
                    bounds: h.bounds(),
                    buckets: h.bucket_counts(),
                    count: h.count(),
                    sum: h.sum(),
                },
            };
            (name, v)
        })
        .collect()
}

/// Zero every registered metric (registrations persist).
pub(crate) fn reset() {
    let reg = registry().lock().expect("metrics registry lock");
    for m in reg.values() {
        match m {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}
