//! Customer cones and network sets.
//!
//! Section 2.2: peering traffic "is commonly limited to the traffic belonging
//! to the peering networks and their customer cones, i.e., their direct and
//! indirect transit customers." Cones therefore decide how much traffic a
//! peer group can offload (section 4) and how many interfaces become
//! reachable by peering at an IXP (figure 10).

use crate::model::Topology;
use rp_types::NetworkId;
use serde::{Deserialize, Serialize};

/// A dense bitset over network ids — the workhorse for cone unions across
/// thousands of IXP members.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkSet {
    bits: Vec<u64>,
    len: usize,
}

impl NetworkSet {
    /// An empty set over a universe of `n` networks.
    pub fn new(n: usize) -> Self {
        NetworkSet {
            bits: vec![0; n.div_ceil(64)],
            len: n,
        }
    }

    /// Size of the universe (not the population count).
    #[inline]
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Insert a network; returns true when newly inserted.
    #[inline]
    pub fn insert(&mut self, id: NetworkId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        let mask = 1u64 << b;
        let fresh = self.bits[w] & mask == 0;
        self.bits[w] |= mask;
        fresh
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: NetworkId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        self.bits[w] & (1u64 << b) != 0
    }

    /// Remove a network.
    #[inline]
    pub fn remove(&mut self, id: NetworkId) {
        let (w, b) = (id.index() / 64, id.index() % 64);
        self.bits[w] &= !(1u64 << b);
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place union. Panics on mismatched universes.
    pub fn union_with(&mut self, other: &NetworkSet) {
        assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= *b;
        }
    }

    /// In-place difference (`self -= other`).
    pub fn subtract(&mut self, other: &NetworkSet) {
        assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= !*b;
        }
    }

    /// Iterate over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = NetworkId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, bits)| {
            let mut rest = *bits;
            std::iter::from_fn(move || {
                if rest == 0 {
                    None
                } else {
                    let b = rest.trailing_zeros();
                    rest &= rest - 1;
                    Some(NetworkId((w * 64) as u32 + b))
                }
            })
        })
    }
}

/// The customer cone of `root`: `root` itself plus its direct and indirect
/// transit customers.
pub fn customer_cone(topo: &Topology, root: NetworkId) -> NetworkSet {
    let mut set = NetworkSet::new(topo.len());
    let mut stack = vec![root];
    set.insert(root);
    while let Some(cur) = stack.pop() {
        for &c in topo.customers(cur) {
            if set.insert(c) {
                stack.push(c);
            }
        }
    }
    set
}

/// Union of the customer cones of several roots — e.g. all members of a peer
/// group present at a set of reached IXPs.
pub fn cone_union(topo: &Topology, roots: &[NetworkId]) -> NetworkSet {
    let mut set = NetworkSet::new(topo.len());
    let mut stack: Vec<NetworkId> = Vec::new();
    for &r in roots {
        if set.insert(r) {
            stack.push(r);
        }
    }
    while let Some(cur) = stack.pop() {
        for &c in topo.customers(cur) {
            if set.insert(c) {
                stack.push(c);
            }
        }
    }
    set
}

/// Size of each network's customer cone, computed for the whole topology in
/// reverse-level order (a network's cone is the union of its customers'
/// cones plus itself; levels make the recursion well-founded).
///
/// Exact cone *sizes* would require set unions; this returns the cheap and
/// standard upper bound obtained by summing (which double-counts multihomed
/// customers) alongside the exact size for networks whose subtree is small.
/// For ranking IXP members by cone weight the upper bound is sufficient and
/// is what we use; exact sets come from [`customer_cone`] when needed.
pub fn cone_size_upper_bounds(topo: &Topology) -> Vec<u64> {
    let mut order: Vec<NetworkId> = topo.ids().collect();
    order.sort_by_key(|id| std::cmp::Reverse(topo.node(*id).level));
    let mut sizes = vec![1u64; topo.len()];
    for id in order {
        let own: u64 = topo.customers(id).iter().map(|c| sizes[c.index()]).sum();
        sizes[id.index()] = 1 + own;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AsNode, AsType, Edge, Org, PeeringPolicy, Relationship};
    use rp_types::{Asn, OrgId};

    fn diamond() -> Topology {
        // 0 -> {1, 2} -> 3 (3 is multihomed under both 1 and 2).
        let mk = |i: u32, level| AsNode {
            id: NetworkId(i),
            asn: Asn(65_000 + i),
            org: OrgId(i),
            kind: if level == 0 {
                AsType::Tier1
            } else {
                AsType::Transit
            },
            policy: PeeringPolicy::Open,
            home_city: 0,
            address_space: 1,
            prominence: 1.0,
            level,
        };
        let ases = vec![mk(0, 0), mk(1, 1), mk(2, 1), mk(3, 2)];
        let orgs = (0..4)
            .map(|i| Org {
                id: OrgId(i),
                name: format!("o{i}"),
                networks: vec![NetworkId(i)],
            })
            .collect();
        let e = |a: u32, b: u32| Edge {
            a: NetworkId(a),
            b: NetworkId(b),
            rel: Relationship::ProviderOf,
        };
        Topology::assemble(ases, orgs, vec![e(0, 1), e(0, 2), e(1, 3), e(2, 3)])
    }

    #[test]
    fn cone_includes_self_and_descendants() {
        let t = diamond();
        let cone = customer_cone(&t, NetworkId(0));
        assert_eq!(cone.count(), 4);
        let cone1 = customer_cone(&t, NetworkId(1));
        assert!(cone1.contains(NetworkId(1)) && cone1.contains(NetworkId(3)));
        assert!(!cone1.contains(NetworkId(2)));
        assert_eq!(cone1.count(), 2);
    }

    #[test]
    fn cone_union_deduplicates_multihomed() {
        let t = diamond();
        let u = cone_union(&t, &[NetworkId(1), NetworkId(2)]);
        // 1, 2, and 3 — but 3 only once.
        assert_eq!(u.count(), 3);
    }

    #[test]
    fn upper_bounds_double_count_multihoming() {
        let t = diamond();
        let sizes = cone_size_upper_bounds(&t);
        assert_eq!(sizes[3], 1);
        assert_eq!(sizes[1], 2);
        // Root: 1 + (2 + 2) = 5 > exact 4, by exactly the multihomed AS3.
        assert_eq!(sizes[0], 5);
    }

    #[test]
    fn bitset_operations() {
        let mut a = NetworkSet::new(130);
        let mut b = NetworkSet::new(130);
        assert!(a.insert(NetworkId(0)));
        assert!(!a.insert(NetworkId(0)));
        a.insert(NetworkId(64));
        a.insert(NetworkId(129));
        b.insert(NetworkId(64));
        b.insert(NetworkId(100));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 4);
        u.subtract(&a);
        assert_eq!(u.count(), 1);
        assert!(u.contains(NetworkId(100)));
        u.remove(NetworkId(100));
        assert_eq!(u.count(), 0);
        let members: Vec<u32> = a.iter().map(|n| n.0).collect();
        assert_eq!(members, vec![0, 64, 129]);
        assert_eq!(a.universe(), 130);
    }
}
