//! The topology data model: ASes, organizations, relationships.

use rp_types::geo::City;
use rp_types::{Asn, NetworkId, OrgId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Business type of a network. Types drive policy priors, traffic shape,
/// address-space size, and IXP membership propensity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsType {
    /// Settlement-free top of the transit hierarchy.
    Tier1,
    /// Regional / national transit provider.
    Transit,
    /// Eyeball / access network serving residential users.
    Access,
    /// Content provider (originates traffic).
    Content,
    /// Content delivery network (originates traffic from many PoPs).
    Cdn,
    /// Hosting / cloud provider.
    Hosting,
    /// National research and education network (RedIRIS is one).
    Nren,
    /// Enterprise stub network.
    Enterprise,
}

impl AsType {
    /// All variants, for iteration in generators and reports.
    pub const ALL: [AsType; 8] = [
        AsType::Tier1,
        AsType::Transit,
        AsType::Access,
        AsType::Content,
        AsType::Cdn,
        AsType::Hosting,
        AsType::Nren,
        AsType::Enterprise,
    ];
}

impl fmt::Display for AsType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AsType::Tier1 => "tier1",
            AsType::Transit => "transit",
            AsType::Access => "access",
            AsType::Content => "content",
            AsType::Cdn => "cdn",
            AsType::Hosting => "hosting",
            AsType::Nren => "nren",
            AsType::Enterprise => "enterprise",
        };
        f.write_str(s)
    }
}

/// Peering policy as self-reported in PeeringDB-like registries
/// (section 2.2: open / selective / restrictive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PeeringPolicy {
    /// Peers with everyone (often automatically via IXP route servers).
    Open,
    /// Peers when conditions are met.
    Selective,
    /// Stringent terms, rarely peers.
    Restrictive,
}

impl fmt::Display for PeeringPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PeeringPolicy::Open => "open",
            PeeringPolicy::Selective => "selective",
            PeeringPolicy::Restrictive => "restrictive",
        };
        f.write_str(s)
    }
}

/// Economic relationship on an inter-AS edge, from the perspective of the
/// edge's stored orientation `(a, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relationship {
    /// `a` sells transit to `b` (`a` is the provider).
    ProviderOf,
    /// Settlement-free peering between `a` and `b`.
    PeerOf,
}

/// One inter-AS edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// First endpoint (the provider for [`Relationship::ProviderOf`]).
    pub a: NetworkId,
    /// Second endpoint (the customer for [`Relationship::ProviderOf`]).
    pub b: NetworkId,
    /// Economic relationship of the pair.
    pub rel: Relationship,
}

/// An organization owning one or more ASNs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Org {
    /// Organization id (dense index).
    pub id: OrgId,
    /// Display name.
    pub name: String,
    /// Networks owned by this organization.
    pub networks: Vec<NetworkId>,
}

/// One autonomous system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsNode {
    /// Dense topology index.
    pub id: NetworkId,
    /// The network's autonomous system number.
    pub asn: Asn,
    /// Owning organization.
    pub org: OrgId,
    /// Business type.
    pub kind: AsType,
    /// Self-reported peering policy.
    pub policy: PeeringPolicy,
    /// Index of the home city in [`rp_types::geo::WORLD_CITIES`].
    pub home_city: u16,
    /// Number of IP interfaces the network (and only it, not its cone)
    /// is responsible for — the figure 10 unit.
    pub address_space: u64,
    /// Market prominence: a heavy-tailed size proxy that couples a
    /// network's traffic volume with its interconnection appetite. The big
    /// content players send the most bytes *and* sit at the most IXPs —
    /// the correlation that concentrates offload potential at the largest
    /// exchanges (figures 7–9).
    pub prominence: f64,
    /// Generation depth in the transit hierarchy: 0 for tier-1, strictly
    /// increasing toward the leaves. Providers always have a smaller level
    /// than their customers, which is what makes the customer graph a DAG.
    pub level: u8,
}

/// A generated AS-level topology.
///
/// Adjacency is stored twice (edge list + per-AS lists) because BGP wants
/// per-AS neighbor iteration while serialization and invariant checks want
/// the flat list.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// All autonomous systems, indexed by [`NetworkId`].
    pub ases: Vec<AsNode>,
    /// All organizations, indexed by [`rp_types::OrgId`].
    pub orgs: Vec<Org>,
    /// Flat edge list (each AS pair appears at most once).
    pub edges: Vec<Edge>,
    providers: Vec<Vec<NetworkId>>,
    customers: Vec<Vec<NetworkId>>,
    peers: Vec<Vec<NetworkId>>,
}

impl Topology {
    /// Assemble a topology from nodes, orgs, and edges, building the per-AS
    /// adjacency lists. Panics if an edge references an unknown AS; the
    /// generator is the only intended caller.
    pub fn assemble(ases: Vec<AsNode>, orgs: Vec<Org>, edges: Vec<Edge>) -> Self {
        let n = ases.len();
        let mut providers = vec![Vec::new(); n];
        let mut customers = vec![Vec::new(); n];
        let mut peers = vec![Vec::new(); n];
        for e in &edges {
            assert!(
                e.a.index() < n && e.b.index() < n,
                "edge references unknown AS"
            );
            match e.rel {
                Relationship::ProviderOf => {
                    customers[e.a.index()].push(e.b);
                    providers[e.b.index()].push(e.a);
                }
                Relationship::PeerOf => {
                    peers[e.a.index()].push(e.b);
                    peers[e.b.index()].push(e.a);
                }
            }
        }
        Topology {
            ases,
            orgs,
            edges,
            providers,
            customers,
            peers,
        }
    }

    /// Number of ASes.
    #[inline]
    pub fn len(&self) -> usize {
        self.ases.len()
    }

    /// True when the topology holds no ASes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ases.is_empty()
    }

    /// The AS with the given id.
    #[inline]
    pub fn node(&self, id: NetworkId) -> &AsNode {
        &self.ases[id.index()]
    }

    /// Transit providers of `id`.
    #[inline]
    pub fn providers(&self, id: NetworkId) -> &[NetworkId] {
        &self.providers[id.index()]
    }

    /// Transit customers of `id`.
    #[inline]
    pub fn customers(&self, id: NetworkId) -> &[NetworkId] {
        &self.customers[id.index()]
    }

    /// Settlement-free peers of `id`.
    #[inline]
    pub fn peers(&self, id: NetworkId) -> &[NetworkId] {
        &self.peers[id.index()]
    }

    /// Iterate over all network ids.
    pub fn ids(&self) -> impl Iterator<Item = NetworkId> + '_ {
        (0..self.ases.len() as u32).map(NetworkId)
    }

    /// All networks of a given type.
    pub fn of_type(&self, kind: AsType) -> impl Iterator<Item = &AsNode> + '_ {
        self.ases.iter().filter(move |a| a.kind == kind)
    }

    /// Map an ASN to its network id. ASNs are unique per topology snapshot.
    pub fn by_asn(&self, asn: Asn) -> Option<NetworkId> {
        self.ases.iter().find(|a| a.asn == asn).map(|a| a.id)
    }

    /// Total address space over all ASes (the figure 10 "2.6 billion IP
    /// interfaces reachable through the transit hierarchy").
    pub fn total_address_space(&self) -> u64 {
        self.ases.iter().map(|a| a.address_space).sum()
    }

    /// Check structural invariants; returns a human-readable violation list
    /// (empty when sound). Used by tests and by the generator's own
    /// post-conditions.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        // Provider levels strictly below customer levels — guarantees a DAG.
        for e in &self.edges {
            if e.rel == Relationship::ProviderOf {
                let (p, c) = (self.node(e.a), self.node(e.b));
                if p.level >= c.level {
                    problems.push(format!(
                        "provider {} (level {}) not above customer {} (level {})",
                        p.asn, p.level, c.asn, c.level
                    ));
                }
            }
            if e.a == e.b {
                problems.push(format!("self-loop at {}", self.node(e.a).asn));
            }
        }
        // Tier-1s have no providers; everyone else has at least one.
        for a in &self.ases {
            let np = self.providers(a.id).len();
            match a.kind {
                AsType::Tier1 => {
                    if np != 0 {
                        problems.push(format!("{} is tier-1 but has providers", a.asn));
                    }
                }
                _ => {
                    if np == 0 {
                        problems.push(format!("{} ({}) has no providers", a.asn, a.kind));
                    }
                }
            }
        }
        // Org back-references are consistent.
        for org in &self.orgs {
            for &n in &org.networks {
                if self.node(n).org != org.id {
                    problems.push(format!("org {} lists {} which points elsewhere", org.id, n));
                }
            }
        }
        // At most one relationship per AS pair.
        let mut pairs: Vec<(u32, u32)> = self
            .edges
            .iter()
            .map(|e| (e.a.0.min(e.b.0), e.a.0.max(e.b.0)))
            .collect();
        pairs.sort_unstable();
        for w in pairs.windows(2) {
            if w[0] == w[1] {
                problems.push(format!(
                    "duplicate relationship between N{} and N{}",
                    w[0].0, w[0].1
                ));
            }
        }
        // ASNs unique.
        let mut asns: Vec<u32> = self.ases.iter().map(|a| a.asn.0).collect();
        asns.sort_unstable();
        let unique = {
            let mut v = asns.clone();
            v.dedup();
            v.len()
        };
        if unique != asns.len() {
            problems.push("duplicate ASNs".into());
        }
        problems
    }

    /// Home city of a network, resolved against the world city database.
    pub fn home_city(&self, id: NetworkId) -> City {
        rp_types::geo::WORLD_CITIES[self.node(id).home_city as usize]
    }

    /// Add a settlement-free peering edge between `a` and `b`.
    ///
    /// Returns `false` (and changes nothing) when the pair already holds a
    /// relationship of any kind or when `a == b` — an AS pair carries at
    /// most one relationship. Used by scenario builders to wire a study
    /// network's pre-existing peerings (home-IXP members, CDNs, backbone
    /// partners) into a generated topology.
    pub fn add_peering(&mut self, a: NetworkId, b: NetworkId) -> bool {
        if a == b
            || self.providers(a).contains(&b)
            || self.customers(a).contains(&b)
            || self.peers(a).contains(&b)
        {
            return false;
        }
        self.edges.push(Edge {
            a,
            b,
            rel: Relationship::PeerOf,
        });
        self.peers[a.index()].push(b);
        self.peers[b.index()].push(a);
        true
    }

    /// Relocate a network's home city (scenario builders pin the study
    /// network to its real location).
    pub fn set_home_city(&mut self, id: NetworkId, city_index: u16) {
        self.ases[id.index()].home_city = city_index;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Topology {
        // AS0 (tier1) -> AS1 (transit) -> AS2 (stub); AS1 peers AS3.
        let mk = |i: u32, kind, level| AsNode {
            id: NetworkId(i),
            asn: Asn(64_000 + i),
            org: OrgId(i),
            kind,
            policy: PeeringPolicy::Open,
            home_city: 0,
            address_space: 10,
            prominence: 1.0,
            level,
        };
        let ases = vec![
            mk(0, AsType::Tier1, 0),
            mk(1, AsType::Transit, 1),
            mk(2, AsType::Enterprise, 2),
            mk(3, AsType::Content, 2),
        ];
        let orgs = (0..4)
            .map(|i| Org {
                id: OrgId(i),
                name: format!("org{i}"),
                networks: vec![NetworkId(i)],
            })
            .collect();
        let edges = vec![
            Edge {
                a: NetworkId(0),
                b: NetworkId(1),
                rel: Relationship::ProviderOf,
            },
            Edge {
                a: NetworkId(1),
                b: NetworkId(2),
                rel: Relationship::ProviderOf,
            },
            Edge {
                a: NetworkId(0),
                b: NetworkId(3),
                rel: Relationship::ProviderOf,
            },
            Edge {
                a: NetworkId(1),
                b: NetworkId(3),
                rel: Relationship::PeerOf,
            },
        ];
        Topology::assemble(ases, orgs, edges)
    }

    #[test]
    fn adjacency_lists_are_built() {
        let t = tiny();
        assert_eq!(t.customers(NetworkId(0)), &[NetworkId(1), NetworkId(3)]);
        assert_eq!(t.providers(NetworkId(2)), &[NetworkId(1)]);
        assert_eq!(t.peers(NetworkId(1)), &[NetworkId(3)]);
        assert_eq!(t.peers(NetworkId(3)), &[NetworkId(1)]);
        assert!(t.peers(NetworkId(0)).is_empty());
    }

    #[test]
    fn tiny_topology_is_valid() {
        assert!(tiny().validate().is_empty());
    }

    #[test]
    fn validation_catches_level_inversion() {
        let mut t = tiny();
        t.ases[1].level = 0; // transit at tier-1 level: provider edge 0->1 inverts
        assert!(!t.validate().is_empty());
    }

    #[test]
    fn lookup_by_asn() {
        let t = tiny();
        assert_eq!(t.by_asn(Asn(64_002)), Some(NetworkId(2)));
        assert_eq!(t.by_asn(Asn(1)), None);
    }

    #[test]
    fn totals_and_type_iteration() {
        let t = tiny();
        assert_eq!(t.total_address_space(), 40);
        assert_eq!(t.of_type(AsType::Tier1).count(), 1);
        assert_eq!(t.of_type(AsType::Nren).count(), 0);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }
}
