//! Topology generation.
//!
//! The generator is deterministic in its config (seed included) and builds
//! the hierarchy top-down: tier-1 clique, then transit providers attaching
//! preferentially to the tier above, then stub networks. Every structural
//! knob maps to an observable the paper's evaluation depends on; see the
//! field docs on [`TopologyConfig`].

use crate::model::{AsNode, AsType, Edge, Org, PeeringPolicy, Relationship, Topology};
use rand::rngs::StdRng;
use rand::RngExt;
use rp_types::dist::{coin, log_normal, weighted_index};
use rp_types::geo::{Continent, WORLD_CITIES};
use rp_types::{seed, Asn, NetworkId, OrgId};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// Size of the settlement-free tier-1 clique.
    pub n_tier1: usize,
    /// Regional / national transit providers.
    pub n_transit: usize,
    /// Eyeball networks.
    pub n_access: usize,
    /// Content originators.
    pub n_content: usize,
    /// CDNs.
    pub n_cdn: usize,
    /// Hosting providers.
    pub n_hosting: usize,
    /// Research and education networks.
    pub n_nren: usize,
    /// Enterprise stubs.
    pub n_enterprise: usize,
    /// Total IP interfaces across all ASes; the paper's figure 10 starts
    /// from ≈2.6 billion interfaces reachable through the transit hierarchy.
    pub total_address_space: u64,
    /// Fraction of organizations owning more than one ASN.
    pub multi_asn_org_fraction: f64,
    /// Probability of a peering edge between two transit networks sharing a
    /// continent (sparse settlement-free mesh below the tier-1 clique).
    pub transit_peering_prob: f64,
    /// Probability that a stub network buys transit directly from a tier-1
    /// instead of a regional transit provider. Stubs that hang exclusively
    /// under tier-1s sit in nobody else's customer cone, which bounds how
    /// much traffic peering can ever offload (the reason the paper's
    /// maximal offload is ~25–33%, not ~100%).
    pub stub_tier1_prob: f64,
    /// Uniform multiplier on every AS-class count except the tier-1
    /// clique (which is structural), and on the total address space.
    /// `10.0` builds a ten-times-larger Internet — and, with
    /// `SceneConfig::scale` raised to match, ten-times-larger IXP member
    /// lists — which is how `repro bench` constructs its sharded-world
    /// workload. `1.0` reproduces the configured counts exactly.
    #[serde(default)]
    pub world_scale: f64,
}

impl TopologyConfig {
    /// Paper-scale world: ~30k ASes, 2.6 B interfaces. Matches the order of
    /// magnitude of the 2013/2014 Internet that the paper measured (the
    /// RedIRIS dataset alone sees 29,570 networks).
    pub fn paper_scale(seed: u64) -> Self {
        TopologyConfig {
            seed,
            n_tier1: 12,
            n_transit: 1_600,
            n_access: 9_500,
            n_content: 5_500,
            n_cdn: 260,
            n_hosting: 4_200,
            n_nren: 120,
            n_enterprise: 10_500,
            total_address_space: 2_600_000_000,
            multi_asn_org_fraction: 0.06,
            transit_peering_prob: 0.004,
            stub_tier1_prob: 0.55,
            world_scale: 1.0,
        }
    }

    /// Small world for unit and integration tests: a few hundred ASes with
    /// the same structural properties, built in milliseconds.
    pub fn test_scale(seed: u64) -> Self {
        TopologyConfig {
            seed,
            n_tier1: 5,
            n_transit: 40,
            n_access: 120,
            n_content: 70,
            n_cdn: 12,
            n_hosting: 50,
            n_nren: 10,
            n_enterprise: 100,
            total_address_space: 50_000_000,
            multi_asn_org_fraction: 0.06,
            transit_peering_prob: 0.02,
            stub_tier1_prob: 0.30,
            world_scale: 1.0,
        }
    }

    /// The configured counts with [`TopologyConfig::world_scale`] applied:
    /// a concrete config (`world_scale` folded back to 1) that the
    /// generator and [`TopologyConfig::total_ases`] agree on. The tier-1
    /// clique is left alone — it is the structural apex, not a population.
    fn resolved(&self) -> TopologyConfig {
        assert!(
            self.world_scale > 0.0 && self.world_scale.is_finite(),
            "world_scale must be a positive finite multiplier, got {}",
            self.world_scale
        );
        if self.world_scale == 1.0 {
            return self.clone();
        }
        let scale = |n: usize| ((n as f64) * self.world_scale).round().max(1.0) as usize;
        TopologyConfig {
            n_transit: scale(self.n_transit),
            n_access: scale(self.n_access),
            n_content: scale(self.n_content),
            n_cdn: scale(self.n_cdn),
            n_hosting: scale(self.n_hosting),
            n_nren: scale(self.n_nren),
            n_enterprise: scale(self.n_enterprise),
            total_address_space: ((self.total_address_space as f64) * self.world_scale) as u64,
            world_scale: 1.0,
            ..self.clone()
        }
    }

    /// Total number of ASes this config will generate (`world_scale`
    /// included).
    pub fn total_ases(&self) -> usize {
        let cfg = self.resolved();
        cfg.n_tier1
            + cfg.n_transit
            + cfg.n_access
            + cfg.n_content
            + cfg.n_cdn
            + cfg.n_hosting
            + cfg.n_nren
            + cfg.n_enterprise
    }
}

/// Relative frequency of network home locations per continent, loosely
/// following where 2013-era networks were registered. Indexed in the order
/// of [`CONTINENTS`].
const CONTINENTS: [Continent; 6] = [
    Continent::Europe,
    Continent::NorthAmerica,
    Continent::Asia,
    Continent::SouthAmerica,
    Continent::Africa,
    Continent::Oceania,
];
const CONTINENT_WEIGHTS: [f64; 6] = [0.40, 0.24, 0.18, 0.09, 0.05, 0.04];

/// Peering-policy priors per type: (open, selective, restrictive).
///
/// Shaped after the PeeringDB skews reported by Lodhi et al. (paper
/// reference [45]): content and hosting lean open, transit leans
/// restrictive, eyeballs sit in between.
fn policy_prior(kind: AsType) -> (f64, f64, f64) {
    match kind {
        AsType::Tier1 => (0.0, 0.05, 0.95),
        AsType::Transit => (0.12, 0.43, 0.45),
        AsType::Access => (0.55, 0.35, 0.10),
        AsType::Content => (0.75, 0.20, 0.05),
        AsType::Cdn => (0.50, 0.40, 0.10),
        AsType::Hosting => (0.70, 0.25, 0.05),
        AsType::Nren => (0.30, 0.60, 0.10),
        AsType::Enterprise => (0.40, 0.40, 0.20),
    }
}

/// Address-space scale per type, in relative units before normalization.
/// Eyeballs are large (residential pools), CDNs and tier-1s sizeable,
/// enterprises tiny.
fn address_scale(kind: AsType) -> f64 {
    match kind {
        AsType::Tier1 => 40.0,
        AsType::Transit => 12.0,
        AsType::Access => 30.0,
        AsType::Content => 2.0,
        AsType::Cdn => 8.0,
        AsType::Hosting => 5.0,
        AsType::Nren => 6.0,
        AsType::Enterprise => 0.5,
    }
}

/// Generate a topology from the config. Panics only on configs that are
/// structurally impossible (zero tier-1s with nonzero stubs).
pub fn generate(cfg: &TopologyConfig) -> Topology {
    let _sp = rp_obs::span("topology.generate");
    let cfg = &cfg.resolved();
    assert!(cfg.n_tier1 >= 1, "need at least one tier-1");
    let mut rng = seed::rng(cfg.seed, "topology", 0);

    let city_indices_by_continent: Vec<Vec<u16>> = CONTINENTS
        .iter()
        .map(|cont| {
            WORLD_CITIES
                .iter()
                .enumerate()
                .filter(|(_, c)| c.continent == *cont)
                .map(|(i, _)| i as u16)
                .collect()
        })
        .collect();

    let pick_city = |rng: &mut StdRng| -> u16 {
        let cont = weighted_index(rng, &CONTINENT_WEIGHTS).expect("weights are positive");
        let cities = &city_indices_by_continent[cont];
        cities[rng.random_range(0..cities.len())]
    };

    // Content infrastructure concentrates in interconnection hubs — the
    // metros hosting the big exchanges and carrier hotels — rather than
    // spreading like eyeball networks do.
    let hub_cities: Vec<u16> = [
        "Amsterdam",
        "Frankfurt",
        "London",
        "Paris",
        "Stockholm",
        "Madrid",
        "Milan",
        "Warsaw",
        "Moscow",
        "New York",
        "Ashburn",
        "Chicago",
        "Dallas",
        "Los Angeles",
        "San Jose",
        "Seattle",
        "Miami",
        "Toronto",
        "Sao Paulo",
        "Hong Kong",
        "Tokyo",
        "Singapore",
        "Sydney",
    ]
    .iter()
    .map(|name| {
        WORLD_CITIES
            .iter()
            .position(|c| c.name == *name)
            .expect("hub city exists") as u16
    })
    .collect();
    let pick_hub = |rng: &mut StdRng| -> u16 {
        // The first few hubs (the biggest markets) draw more.
        let weights: Vec<f64> = (0..hub_cities.len())
            .map(|i| 1.0 / (1.0 + i as f64 * 0.35))
            .collect();
        hub_cities[weighted_index(rng, &weights).expect("positive weights")]
    };

    // --- 1. Create nodes ------------------------------------------------
    let plan: [(AsType, usize); 8] = [
        (AsType::Tier1, cfg.n_tier1),
        (AsType::Transit, cfg.n_transit),
        (AsType::Access, cfg.n_access),
        (AsType::Content, cfg.n_content),
        (AsType::Cdn, cfg.n_cdn),
        (AsType::Hosting, cfg.n_hosting),
        (AsType::Nren, cfg.n_nren),
        (AsType::Enterprise, cfg.n_enterprise),
    ];

    let mut ases: Vec<AsNode> = Vec::with_capacity(cfg.total_ases());
    let mut next_asn: u32 = 1_000;
    for (kind, count) in plan {
        for k in 0..count {
            let id = NetworkId(ases.len() as u32);
            // ASNs with realistic gaps, so identification maps are not
            // trivially dense.
            next_asn += 1 + rng.random_range(0..7u32);
            let (po, ps, _pr) = policy_prior(kind);
            let u: f64 = rng.random();
            let policy = if u < po {
                PeeringPolicy::Open
            } else if u < po + ps {
                PeeringPolicy::Selective
            } else {
                PeeringPolicy::Restrictive
            };
            let level = match kind {
                AsType::Tier1 => 0,
                // Half the transit networks attach directly to tier-1s,
                // half form a second transit layer.
                AsType::Transit => 1 + (k % 2) as u8,
                _ => 3,
            };
            let home_city = match kind {
                AsType::Content | AsType::Cdn | AsType::Hosting => {
                    if coin(&mut rng, 0.65) {
                        pick_hub(&mut rng)
                    } else {
                        pick_city(&mut rng)
                    }
                }
                _ => pick_city(&mut rng),
            };
            // Prominence: heavy-tailed, heavier for the types that grow
            // global footprints.
            let prom_alpha = match kind {
                AsType::Cdn => 0.9,
                AsType::Content | AsType::Hosting => 1.0,
                AsType::Transit | AsType::Tier1 => 1.1,
                _ => 1.3,
            };
            let prominence = rp_types::dist::pareto(&mut rng, 1.0, prom_alpha).min(3_000.0);
            // Big players formalize peering: prominent networks shift from
            // open toward selective (and the biggest aggregators toward
            // restrictive) policies — large operators rarely auto-peer with
            // everyone, which is why the paper's open-policy lower bound
            // (peer group 1) offloads only 8% while the all-policies upper
            // bound reaches 25%.
            let policy =
                if prominence > 50.0 && policy == PeeringPolicy::Open && coin(&mut rng, 0.85) {
                    if prominence > 500.0 && coin(&mut rng, 0.4) {
                        PeeringPolicy::Restrictive
                    } else {
                        PeeringPolicy::Selective
                    }
                } else {
                    policy
                };
            ases.push(AsNode {
                id,
                asn: Asn(next_asn),
                org: OrgId(0), // assigned below
                kind,
                policy,
                home_city,
                address_space: 0, // assigned below
                prominence,
                level,
            });
        }
    }
    let n = ases.len();

    // --- 2. Transit edges -------------------------------------------------
    // Preferential attachment with geographic locality: the probability of
    // choosing a provider is (1 + current customer count) · locality boost.
    let mut edges: Vec<Edge> = Vec::new();
    let mut customer_count = vec![0u32; n];

    // Tier-1 clique (settlement-free peering among all tier-1s).
    let tier1_ids: Vec<NetworkId> = ases
        .iter()
        .filter(|a| a.kind == AsType::Tier1)
        .map(|a| a.id)
        .collect();
    for (i, &a) in tier1_ids.iter().enumerate() {
        for &b in &tier1_ids[i + 1..] {
            edges.push(Edge {
                a,
                b,
                rel: Relationship::PeerOf,
            });
        }
    }

    let continent_of = |a: &AsNode| WORLD_CITIES[a.home_city as usize].continent;

    // Provider candidates per level: level-l networks choose providers among
    // strictly lower levels (tier-1 for level 1; tier-1 + level-1 transit for
    // level 2; transit for level 3).
    let choose_providers = |rng: &mut StdRng,
                            node: &AsNode,
                            candidates: &[NetworkId],
                            customer_count: &[u32],
                            ases: &[AsNode],
                            want: usize|
     -> Vec<NetworkId> {
        let weights: Vec<f64> = candidates
            .iter()
            .map(|c| {
                let cand = &ases[c.index()];
                let locality = if continent_of(cand) == continent_of(node) {
                    3.0
                } else {
                    1.0
                };
                (1.0 + customer_count[c.index()] as f64) * locality
            })
            .collect();
        let mut picked = Vec::with_capacity(want);
        let mut weights = weights;
        for _ in 0..want.min(candidates.len()) {
            match weighted_index(rng, &weights) {
                Some(i) => {
                    picked.push(candidates[i]);
                    weights[i] = 0.0; // without replacement
                }
                None => break,
            }
        }
        picked
    };

    let level1: Vec<NetworkId> = ases
        .iter()
        .filter(|a| a.kind == AsType::Transit && a.level == 1)
        .map(|a| a.id)
        .collect();
    let all_transit: Vec<NetworkId> = ases
        .iter()
        .filter(|a| a.kind == AsType::Transit)
        .map(|a| a.id)
        .collect();

    let ids: Vec<NetworkId> = ases.iter().map(|a| a.id).collect();
    for &id in &ids {
        let node = ases[id.index()].clone();
        let (candidates, want): (&[NetworkId], usize) = match (node.kind, node.level) {
            (AsType::Tier1, _) => continue,
            (AsType::Transit, 1) => (&tier1_ids, 1 + rng.random_range(0..2usize)),
            (AsType::Transit, _) => (&level1, 1 + rng.random_range(0..2usize)),
            // NRENs buy from tier-1s directly (RedIRIS buys transit from two
            // tier-1 providers).
            (AsType::Nren, _) => (&tier1_ids, 2),
            // Other stubs: usually regional transit, sometimes straight
            // from a tier-1.
            _ => {
                if coin(&mut rng, cfg.stub_tier1_prob) {
                    (&tier1_ids, 1 + rng.random_range(0..2usize))
                } else {
                    (&all_transit, 1 + rng.random_range(0..3usize))
                }
            }
        };
        for p in choose_providers(&mut rng, &node, candidates, &customer_count, &ases, want) {
            customer_count[p.index()] += 1;
            edges.push(Edge {
                a: p,
                b: id,
                rel: Relationship::ProviderOf,
            });
        }
    }

    // Sparse settlement-free peering among same-continent transit networks.
    // A pair of ASes holds at most one relationship: skip pairs already
    // connected by a transit edge (being both peer and provider of the same
    // network would make route classification ambiguous).
    let connected: std::collections::HashSet<(u32, u32)> = edges
        .iter()
        .map(|e| (e.a.0.min(e.b.0), e.a.0.max(e.b.0)))
        .collect();
    for i in 0..all_transit.len() {
        for j in (i + 1)..all_transit.len() {
            let (a, b) = (all_transit[i], all_transit[j]);
            if continent_of(&ases[a.index()]) == continent_of(&ases[b.index()])
                && !connected.contains(&(a.0.min(b.0), a.0.max(b.0)))
                && coin(&mut rng, cfg.transit_peering_prob)
            {
                edges.push(Edge {
                    a,
                    b,
                    rel: Relationship::PeerOf,
                });
            }
        }
    }

    // --- 3. Address space ---------------------------------------------------
    // Access networks draw from a Pareto tail: a small set of eyeball
    // aggregators holds most of the address space (these giants are what
    // make figure 10 drop steeply after the first reached IXP), while other
    // types stay log-normal.
    let mut raw: Vec<f64> = ases
        .iter()
        .map(|a| {
            let shape = match a.kind {
                AsType::Access => rp_types::dist::pareto(&mut rng, 1.0, 0.75).min(6_000.0),
                _ => log_normal(&mut rng, 0.0, 1.2),
            };
            address_scale(a.kind) * shape
        })
        .collect();
    let total_raw: f64 = raw.iter().sum();
    let scale = cfg.total_address_space as f64 / total_raw;
    for (a, r) in ases.iter_mut().zip(&mut raw) {
        a.address_space = ((*r * scale).round() as u64).max(16);
    }

    // --- 4. Organizations -----------------------------------------------------
    // Walk networks in order; with probability `multi_asn_org_fraction` an
    // organization absorbs the next 1..3 networks of the same type as well.
    let mut orgs: Vec<Org> = Vec::new();
    let mut i = 0usize;
    while i < n {
        let org_id = OrgId(orgs.len() as u32);
        let mut networks = vec![NetworkId(i as u32)];
        ases[i].org = org_id;
        let kind = ases[i].kind;
        if coin(&mut rng, cfg.multi_asn_org_fraction) {
            let extra = 1 + rng.random_range(0..3usize);
            for _ in 0..extra {
                let j = i + networks.len();
                if j < n && ases[j].kind == kind {
                    ases[j].org = org_id;
                    networks.push(NetworkId(j as u32));
                } else {
                    break;
                }
            }
        }
        i += networks.len();
        orgs.push(Org {
            id: org_id,
            name: format!("org-{}", org_id.0),
            networks,
        });
    }

    let topo = Topology::assemble(ases, orgs, edges);
    debug_assert!(topo.validate().is_empty(), "{:?}", topo.validate());
    topo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cone::{cone_size_upper_bounds, customer_cone};

    #[test]
    fn test_scale_generates_valid_topology() {
        let topo = generate(&TopologyConfig::test_scale(1));
        assert!(topo.validate().is_empty(), "{:?}", topo.validate());
        assert_eq!(topo.len(), TopologyConfig::test_scale(1).total_ases());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&TopologyConfig::test_scale(7));
        let b = generate(&TopologyConfig::test_scale(7));
        assert_eq!(a.edges, b.edges);
        assert_eq!(
            a.ases.iter().map(|x| x.asn).collect::<Vec<_>>(),
            b.ases.iter().map(|x| x.asn).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&TopologyConfig::test_scale(1));
        let b = generate(&TopologyConfig::test_scale(2));
        assert_ne!(
            a.ases.iter().map(|x| x.home_city).collect::<Vec<_>>(),
            b.ases.iter().map(|x| x.home_city).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tier1_clique_is_complete() {
        let topo = generate(&TopologyConfig::test_scale(3));
        let t1: Vec<_> = topo.of_type(AsType::Tier1).map(|a| a.id).collect();
        for &a in &t1 {
            for &b in &t1 {
                if a != b {
                    assert!(topo.peers(a).contains(&b), "{a} !~ {b}");
                }
            }
        }
    }

    #[test]
    fn nrens_buy_from_two_tier1s() {
        let topo = generate(&TopologyConfig::test_scale(4));
        for nren in topo.of_type(AsType::Nren) {
            let provs = topo.providers(nren.id);
            assert_eq!(provs.len(), 2, "{}", nren.asn);
            for p in provs {
                assert_eq!(topo.node(*p).kind, AsType::Tier1);
            }
        }
    }

    #[test]
    fn address_space_totals_to_target() {
        let cfg = TopologyConfig::test_scale(5);
        let topo = generate(&cfg);
        let total = topo.total_address_space();
        let target = cfg.total_address_space;
        let err = (total as f64 - target as f64).abs() / target as f64;
        assert!(err < 0.01, "total {total} vs target {target}");
    }

    #[test]
    fn tier1_cones_cover_most_of_the_internet() {
        let topo = generate(&TopologyConfig::test_scale(6));
        // A single tier-1 does not cone-cover other tier-1s or their
        // exclusive customers, but the best-connected tier-1 covers a large
        // share of the stub population.
        let biggest = topo
            .of_type(AsType::Tier1)
            .map(|a| customer_cone(&topo, a.id).count())
            .max()
            .unwrap();
        assert!(
            biggest > topo.len() / 8,
            "cone {} of {}",
            biggest,
            topo.len()
        );
    }

    #[test]
    fn cone_bounds_are_bounds() {
        let topo = generate(&TopologyConfig::test_scale(8));
        let bounds = cone_size_upper_bounds(&topo);
        for id in topo.ids().take(50) {
            let exact = customer_cone(&topo, id).count() as u64;
            assert!(bounds[id.index()] >= exact, "{id}");
        }
    }

    #[test]
    fn some_orgs_own_multiple_asns() {
        let topo = generate(&TopologyConfig::test_scale(9));
        let multi = topo.orgs.iter().filter(|o| o.networks.len() > 1).count();
        assert!(multi > 0);
        // And the overwhelming majority stay single-ASN.
        assert!(multi * 5 < topo.orgs.len());
    }

    #[test]
    fn world_scale_multiplies_member_classes_not_the_clique() {
        let base = TopologyConfig::test_scale(11);
        let scaled = TopologyConfig {
            world_scale: 10.0,
            ..TopologyConfig::test_scale(11)
        };
        // total_ases and the generator agree on the scaled counts.
        let topo = generate(&scaled);
        assert!(topo.validate().is_empty(), "{:?}", topo.validate());
        assert_eq!(topo.len(), scaled.total_ases());
        // Member classes grow tenfold; the tier-1 clique stays structural.
        let count = |t: &Topology, kind: AsType| t.of_type(kind).count();
        let base_topo = generate(&base);
        assert_eq!(
            count(&topo, AsType::Tier1),
            count(&base_topo, AsType::Tier1)
        );
        assert_eq!(
            count(&topo, AsType::Access),
            10 * count(&base_topo, AsType::Access)
        );
        assert_eq!(
            count(&topo, AsType::Content),
            10 * count(&base_topo, AsType::Content)
        );
        // world_scale 1.0 is exactly the unscaled config.
        assert_eq!(base.total_ases(), base_topo.len());
    }

    #[test]
    fn policies_follow_type_skew() {
        let topo = generate(&TopologyConfig::paper_scale(10));
        let open_frac = |kind: AsType| {
            let all: Vec<_> = topo.of_type(kind).collect();
            all.iter()
                .filter(|a| a.policy == PeeringPolicy::Open)
                .count() as f64
                / all.len() as f64
        };
        assert!(open_frac(AsType::Content) > open_frac(AsType::Transit));
        assert!(open_frac(AsType::Hosting) > open_frac(AsType::Enterprise));
    }
}
