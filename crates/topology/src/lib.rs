#![warn(missing_docs)]

//! # rp-topology
//!
//! Synthetic AS-level Internet topology — the substrate the paper takes for
//! granted by measuring the real Internet.
//!
//! The generator produces a topology with the structural properties the
//! paper's studies depend on:
//!
//! - a **tier-1 clique** at the top of the transit hierarchy (RedIRIS buys
//!   transit from two tier-1 providers; no network sells transit to them);
//! - a **provider–customer DAG** below it, so customer cones are well
//!   defined (peering exchanges traffic of the peers *and their customer
//!   cones*, section 2.2);
//! - **organizations** that may own several ASNs (the paper notes ASes are
//!   imperfect proxies of organizations);
//! - per-AS **geography** (home city / PoPs) so that remote peering has a
//!   distance to be detected over;
//! - per-AS **peering policies** (open / selective / restrictive) with
//!   PeeringDB-like skews by network type, feeding the four peer groups of
//!   section 4.2;
//! - per-AS **address space** summing to ≈2.6 billion interfaces, the
//!   figure 10 denominator.

pub mod cone;
pub mod generate;
pub mod model;

pub use cone::NetworkSet;
pub use generate::{generate, TopologyConfig};
pub use model::{AsNode, AsType, Org, PeeringPolicy, Relationship, Topology};
