//! Property-based tests on topology generation and cone algebra.

use proptest::prelude::*;
use rp_topology::cone::{cone_size_upper_bounds, cone_union, customer_cone, NetworkSet};
use rp_topology::{generate, AsType, TopologyConfig};
use rp_types::NetworkId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_topologies_are_always_valid(seed in any::<u64>()) {
        let topo = generate(&TopologyConfig::test_scale(seed));
        let problems = topo.validate();
        prop_assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn cones_are_downward_closed(seed in any::<u64>(), root_pick in 0usize..100) {
        let topo = generate(&TopologyConfig::test_scale(seed));
        let root = NetworkId((root_pick % topo.len()) as u32);
        let cone = customer_cone(&topo, root);
        prop_assert!(cone.contains(root));
        for member in cone.iter() {
            for &c in topo.customers(member) {
                prop_assert!(cone.contains(c), "cone must contain customers of members");
            }
        }
    }

    #[test]
    fn upper_bounds_dominate_exact_sizes(seed in any::<u64>()) {
        let topo = generate(&TopologyConfig::test_scale(seed));
        let bounds = cone_size_upper_bounds(&topo);
        for id in topo.ids().step_by(17) {
            let exact = customer_cone(&topo, id).count() as u64;
            prop_assert!(bounds[id.index()] >= exact);
        }
    }

    #[test]
    fn union_equals_fold_of_singles(seed in any::<u64>(), picks in proptest::collection::vec(0usize..100, 1..6)) {
        let topo = generate(&TopologyConfig::test_scale(seed));
        let roots: Vec<NetworkId> =
            picks.iter().map(|p| NetworkId((p % topo.len()) as u32)).collect();
        let union = cone_union(&topo, &roots);
        let mut folded = NetworkSet::new(topo.len());
        for &r in &roots {
            folded.union_with(&customer_cone(&topo, r));
        }
        prop_assert_eq!(union, folded);
    }

    #[test]
    fn stubs_never_have_customers(seed in any::<u64>()) {
        let topo = generate(&TopologyConfig::test_scale(seed));
        for a in topo.of_type(AsType::Enterprise).chain(topo.of_type(AsType::Access)) {
            prop_assert!(topo.customers(a.id).is_empty(), "{} has customers", a.asn);
        }
    }

    #[test]
    fn bitset_difference_then_union_roundtrips(
        universe in 1usize..300,
        xs in proptest::collection::vec(0usize..300, 0..50),
        ys in proptest::collection::vec(0usize..300, 0..50),
    ) {
        let mut a = NetworkSet::new(universe);
        let mut b = NetworkSet::new(universe);
        for x in &xs { a.insert(NetworkId((x % universe) as u32)); }
        for y in &ys { b.insert(NetworkId((y % universe) as u32)); }
        let mut diff = a.clone();
        diff.subtract(&b);
        // diff ∪ (a ∩ b) == a  — check via counts and membership.
        for m in diff.iter() {
            prop_assert!(a.contains(m) && !b.contains(m));
        }
        let mut back = diff.clone();
        back.union_with(&b);
        for m in a.iter() {
            prop_assert!(back.contains(m));
        }
    }
}
