//! HTTP-layer hardening tests: malformed requests, oversized bodies,
//! unknown routes, wrong methods, and slow-loris clients all get a bounded
//! response — a status code plus a one-line JSON error — never a hang or
//! a dropped connection.

use rp_server::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A server with no workers (these tests never run jobs) on an ephemeral
/// port, with a short read timeout so the slow-loris test stays fast.
fn test_server() -> Server {
    Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 0,
        read_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    })
    .expect("bind test server")
}

/// Send raw bytes, read the whole response (the server closes the
/// connection), and split it into (status, body).
fn raw_request(server: &Server, bytes: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    stream.write_all(bytes).expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> (u16, String) {
    let text = String::from_utf8_lossy(raw).to_string();
    let (head, body) = text
        .split_once("\r\n\r\n")
        .expect("response has a header block");
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, body.to_string())
}

fn request(server: &Server, method: &str, path: &str, body: &str) -> (u16, String) {
    raw_request(
        server,
        format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// Every error body must be exactly one JSON line with an "error" key.
fn assert_one_line_error(body: &str) {
    assert_eq!(body.matches('\n').count(), 1, "not one line: {body:?}");
    assert!(body.ends_with('\n'), "no trailing newline: {body:?}");
    let doc: serde_json::Value = serde_json::from_str(body.trim_end()).expect("error body is JSON");
    assert!(
        doc.get("error")
            .and_then(serde_json::Value::as_str)
            .is_some(),
        "no error key: {body:?}"
    );
}

#[test]
fn malformed_request_lines_get_400() {
    let server = test_server();
    for garbage in [
        "NOT-A-REQUEST\r\n\r\n",
        "GET\r\n\r\n",
        "GET /healthz\r\n\r\n",
        "GET /healthz HTTP/1.1 extra\r\n\r\n",
        "GET healthz HTTP/1.1\r\n\r\n",
        "GET /healthz SPDY/3\r\n\r\n",
    ] {
        let (status, body) = raw_request(&server, garbage.as_bytes());
        assert_eq!(status, 400, "for {garbage:?}");
        assert_one_line_error(&body);
    }
    server.join();
}

#[test]
fn unknown_routes_get_404_and_wrong_methods_405() {
    let server = test_server();
    let (status, body) = request(&server, "GET", "/v2/nope", "");
    assert_eq!(status, 404);
    assert_one_line_error(&body);

    let (status, body) = request(&server, "DELETE", "/healthz", "");
    assert_eq!(status, 405);
    assert_one_line_error(&body);

    let (status, body) = request(&server, "PUT", "/v1/jobs", "");
    assert_eq!(status, 405);
    assert_one_line_error(&body);
    server.join();
}

#[test]
fn oversized_bodies_get_413_without_being_read() {
    let server = test_server();
    // Declare 2 MiB but send nothing: the server must answer from the
    // headers alone.
    let (status, body) = raw_request(
        &server,
        b"POST /v1/jobs HTTP/1.1\r\nHost: t\r\nContent-Length: 2097152\r\n\r\n",
    );
    assert_eq!(status, 413);
    assert_one_line_error(&body);
    server.join();
}

#[test]
fn chunked_encoding_is_rejected() {
    let server = test_server();
    let (status, body) = raw_request(
        &server,
        b"POST /v1/jobs HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n",
    );
    assert_eq!(status, 400);
    assert_one_line_error(&body);
    server.join();
}

#[test]
fn slow_loris_is_bounded_by_the_read_timeout() {
    let server = test_server();
    let t0 = Instant::now();
    // Send half a request line and stall. The 300 ms read timeout (and
    // its 4x overall deadline) must produce a 408 long before our own
    // 10 s client timeout.
    let (status, body) = raw_request(&server, b"GET /heal");
    assert_eq!(status, 408);
    assert_one_line_error(&body);
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "slow-loris took {:?}",
        t0.elapsed()
    );
    server.join();
}

#[test]
fn bad_submissions_get_400_with_a_reason() {
    let server = test_server();
    let (status, body) = request(&server, "POST", "/v1/jobs", "{not json");
    assert_eq!(status, 400);
    assert_one_line_error(&body);

    let (status, body) = request(&server, "POST", "/v1/jobs", r#"{"kind": "dance"}"#);
    assert_eq!(status, 400);
    assert!(body.contains("dance"), "{body:?}");
    assert_one_line_error(&body);

    let (status, body) = request(
        &server,
        "POST",
        "/v1/jobs",
        r#"{"kind": "campaign", "params": {"warp_factor": 9}}"#,
    );
    assert_eq!(status, 400);
    assert!(body.contains("warp_factor"), "{body:?}");
    assert_one_line_error(&body);
    server.join();
}

#[test]
fn bad_state_filters_get_400_and_good_ones_list() {
    let server = test_server();
    let (status, body) = request(&server, "GET", "/v1/jobs?state=paused", "");
    assert_eq!(status, 400);
    assert_one_line_error(&body);

    let (status, body) = request(&server, "GET", "/v1/jobs?state=queued", "");
    assert_eq!(status, 200);
    let doc: serde_json::Value = serde_json::from_str(body.trim_end()).unwrap();
    assert!(doc
        .get("jobs")
        .and_then(serde_json::Value::as_array)
        .is_some());
    server.join();
}

#[test]
fn healthz_and_metrics_answer() {
    let server = test_server();
    let (status, body) = request(&server, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let doc: serde_json::Value = serde_json::from_str(body.trim_end()).unwrap();
    assert_eq!(
        doc.get("status").and_then(serde_json::Value::as_str),
        Some("ok")
    );
    assert_eq!(
        doc.get("accepting").and_then(serde_json::Value::as_bool),
        Some(true)
    );

    let (status, body) = request(&server, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(serde_json::from_str(body.trim_end()).is_ok());

    let (status, _) = request(&server, "GET", "/v1/jobs/deadbeef00000000", "");
    assert_eq!(status, 404);
    server.join();
}

#[test]
fn shutdown_endpoint_drains() {
    let server = test_server();
    let (status, _) = request(&server, "POST", "/v1/shutdown", "");
    assert_eq!(status, 202);
    // The drain flag flips before the 202 goes out, so the queue is
    // already refusing work even if the accept loop lingers a poll tick.
    assert!(!server.queue().accepting());
    server.join();
}
