//! Concurrency semantics of the job service, exercised in one test so the
//! process-global memo counters stay attributable:
//!
//! - N parallel submissions of the same spec collapse to ONE job and ONE
//!   world build (the memo-pool hit counters prove it), and every client
//!   reads byte-identical result bytes;
//! - a full queue answers 429 with a `Retry-After` header;
//! - cancelling a queued job prevents it from ever running.

use rp_server::{JobSpec, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<u8>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("set timeout");
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header block");
    let head = String::from_utf8_lossy(&raw[..header_end]).to_string();
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, raw[header_end + 4..].to_vec(), head)
}

fn parse_spec(text: &str) -> JobSpec {
    JobSpec::parse(&serde_json::from_str(text).expect("test JSON")).expect("valid spec")
}

fn wait_done(addr: std::net::SocketAddr, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body, _) = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200);
        let doc: serde_json::Value = serde_json::from_str(&String::from_utf8_lossy(&body)).unwrap();
        match doc.get("state").and_then(serde_json::Value::as_str) {
            Some("done") => return,
            Some("failed") => panic!("job {id} failed: {doc}"),
            Some("cancelled") => panic!("job {id} cancelled unexpectedly"),
            _ => {
                assert!(Instant::now() < deadline, "job {id} never finished");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

#[test]
fn concurrency_semantics() {
    rp_obs::enable();

    // ---- Part 1: same-spec dedupe builds the world exactly once. ------
    // Seed 9901 is unique to this test binary, so the world_miss delta
    // below is attributable to these submissions alone.
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind server");
    let addr = server.local_addr();
    let spec_text = r#"{"kind": "campaign", "seed": 9901, "params": {"threshold_ms": 15}}"#;

    let misses_before = rp_obs::metrics::counter("core.memo.world_miss").get();
    let outcomes: Vec<(u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let (status, body, _) = request(addr, "POST", "/v1/jobs", spec_text);
                    let doc: serde_json::Value =
                        serde_json::from_str(&String::from_utf8_lossy(&body)).unwrap();
                    let id = doc
                        .get("id")
                        .and_then(serde_json::Value::as_str)
                        .expect("submission has an id")
                        .to_string();
                    (status, id)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let accepted = outcomes.iter().filter(|(s, _)| *s == 202).count();
    let deduped = outcomes.iter().filter(|(s, _)| *s == 200).count();
    assert_eq!(accepted, 1, "exactly one submission creates the job");
    assert_eq!(deduped, 7, "the rest dedupe onto it");
    let id = outcomes[0].1.clone();
    assert!(outcomes.iter().all(|(_, i)| *i == id), "one shared job id");
    assert_eq!(id, parse_spec(spec_text).id(), "id is content-addressed");

    wait_done(addr, &id);
    let misses_after = rp_obs::metrics::counter("core.memo.world_miss").get();
    assert_eq!(
        misses_after - misses_before,
        1,
        "eight submissions, one world build"
    );
    let deduped_counter = rp_obs::metrics::counter("server.jobs.deduped").get();
    assert!(
        deduped_counter >= 7,
        "dedupe metric recorded: {deduped_counter}"
    );

    // Every client sees byte-identical result bytes, equal to an
    // in-process run_job of the same spec.
    let reference = rp_server::run_job(&parse_spec(spec_text)).artifact;
    for _ in 0..8 {
        let (status, body, _) = request(addr, "GET", &format!("/v1/jobs/{id}/result"), "");
        assert_eq!(status, 200);
        assert_eq!(String::from_utf8_lossy(&body), reference);
    }
    server.join();

    // ---- Part 2: queue-full submissions get 429 + Retry-After. --------
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 0, // nothing drains, so the queue actually fills
        queue_capacity: 2,
        ..ServeConfig::default()
    })
    .expect("bind server");
    let addr = server.local_addr();
    for threshold in [21, 22] {
        let spec = format!(
            "{{\"kind\": \"campaign\", \"seed\": 9902, \"params\": {{\"threshold_ms\": {threshold}}}}}"
        );
        let (status, _, _) = request(addr, "POST", "/v1/jobs", &spec);
        assert_eq!(status, 202);
    }
    let spec = r#"{"kind": "campaign", "seed": 9902, "params": {"threshold_ms": 23}}"#;
    let (status, body, head) = request(addr, "POST", "/v1/jobs", spec);
    assert_eq!(status, 429);
    assert!(
        head.to_ascii_lowercase().contains("retry-after: 1"),
        "429 carries Retry-After: {head}"
    );
    let text = String::from_utf8_lossy(&body).to_string();
    assert_eq!(text.matches('\n').count(), 1, "one-line error: {text:?}");
    let rejected = rp_obs::metrics::counter("server.jobs.rejected").get();
    assert!(rejected >= 1, "rejection metric recorded");
    server.join();

    // ---- Part 3: a cancelled queued job never runs. -------------------
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 0, // keep everything queued while we cancel
        ..ServeConfig::default()
    })
    .expect("bind server");
    let addr = server.local_addr();
    let mut ids = Vec::new();
    for threshold in [31, 32, 33] {
        let spec = format!(
            "{{\"kind\": \"campaign\", \"seed\": 9903, \"params\": {{\"threshold_ms\": {threshold}}}}}"
        );
        let (status, body, _) = request(addr, "POST", "/v1/jobs", &spec);
        assert_eq!(status, 202);
        let doc: serde_json::Value = serde_json::from_str(&String::from_utf8_lossy(&body)).unwrap();
        ids.push(
            doc.get("id")
                .and_then(serde_json::Value::as_str)
                .unwrap()
                .to_string(),
        );
    }

    let (status, _, _) = request(addr, "DELETE", &format!("/v1/jobs/{}", ids[1]), "");
    assert_eq!(status, 200);
    // Double-cancel and cancel-of-missing answer 409/404, not 200.
    let (status, _, _) = request(addr, "DELETE", &format!("/v1/jobs/{}", ids[1]), "");
    assert_eq!(status, 409);
    let (status, _, _) = request(addr, "DELETE", "/v1/jobs/ffffffffffffffff", "");
    assert_eq!(status, 404);

    let misses_before = rp_obs::metrics::counter("core.memo.world_miss").get();
    // Now let workers at the queue: jobs 0 and 2 run, job 1 must not.
    let queue = std::sync::Arc::clone(server.queue());
    let workers =
        rp_server::JobQueue::spawn_workers(&queue, 2, rp_server::queue::WorkerContext::default());
    queue.wait_until_idle();
    for (i, id) in ids.iter().enumerate() {
        let (status, body, _) = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200);
        let doc: serde_json::Value = serde_json::from_str(&String::from_utf8_lossy(&body)).unwrap();
        let state = doc.get("state").and_then(serde_json::Value::as_str);
        if i == 1 {
            assert_eq!(state, Some("cancelled"));
            let (status, _, _) = request(addr, "GET", &format!("/v1/jobs/{id}/result"), "");
            assert_eq!(status, 409, "cancelled jobs have no result");
        } else {
            assert_eq!(state, Some("done"));
        }
    }
    // Three submissions, one cancelled: the two survivors share one
    // seed-9903 world build.
    let misses_after = rp_obs::metrics::counter("core.memo.world_miss").get();
    assert_eq!(misses_after - misses_before, 1, "cancelled job never built");

    server.join();
    for h in workers {
        h.join().unwrap();
    }
}
