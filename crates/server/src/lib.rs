//! # rp-server: the reproduction pipeline as a long-running job service
//!
//! `repro serve` wraps the existing sweep/check/campaign machinery in a
//! small HTTP/1.1 job API so repeated reproduction runs share one warm
//! process — and, through the world pool in `remote_peering::memo`, one
//! set of memoized world builds — instead of paying cold-start per
//! invocation.
//!
//! The crate splits into four layers:
//!
//! - [`http`]: a hand-rolled, hard-capped HTTP/1.1 subset over
//!   `std::net` (no external dependencies, one request per connection);
//! - [`job`]: job envelopes ([`job::JobSpec`]) and the shared
//!   [`job::run_job`] entry point the CLI subcommands call too, which is
//!   what makes served artifacts byte-identical to CLI artifacts *by
//!   construction*;
//! - [`queue`]: the bounded job queue, per-job state machine, and worker
//!   pool;
//! - [`service`]: the accept loop, request routing, and the
//!   graceful-drain protocol ([`service::Server::run_until_signal`]).
//!
//! Determinism: a job's artifact bytes depend only on its spec — never on
//! the worker count, queue order, pool state, or whether the CLI or the
//! server ran it. The server adds *scheduling*, not *semantics*.

pub mod http;
pub mod job;
pub mod queue;
pub mod service;

pub use job::{run_job, JobResult, JobSpec};
pub use queue::{JobQueue, JobState, Submit};
pub use service::{ServeConfig, Server};
