//! The `repro serve` server: TCP accept loop, request routing, and the
//! graceful-drain protocol.
//!
//! Concurrency model: one nonblocking accept loop polling at ~50 Hz, one
//! short-lived thread per connection (the API is one request per
//! connection), and a fixed worker pool draining the job queue. Shutdown
//! — SIGTERM, ctrl-c, or `POST /v1/shutdown` — follows one protocol:
//! stop accepting connections and submissions, let the workers finish
//! every accepted job, flush results to disk, then return so the process
//! can exit 0. No accepted job is ever dropped by a drain.

use crate::http::{read_request, Request, Response};
use crate::job::JobSpec;
use crate::queue::{JobQueue, JobRecord, JobState, Submit, WorkerContext};
use serde_json::{json, Value};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything `Server::bind` needs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:8080` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads draining the job queue. Zero spawns none — a test
    /// hook so queued jobs stay queued until the caller drains.
    pub workers: usize,
    /// Pending-queue bound; submissions beyond it get 429.
    pub queue_capacity: usize,
    /// World-pool entry bound (see `remote_peering::memo`).
    pub pool_entries: usize,
    /// Optional world-pool byte budget.
    pub pool_bytes: Option<u64>,
    /// Persist artifacts here in the CLI's output layout; `None` keeps
    /// results in memory only.
    pub results_dir: Option<PathBuf>,
    /// Per-read socket timeout (the slow-loris bound).
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            workers: 2,
            queue_capacity: 256,
            pool_entries: 32,
            pool_bytes: None,
            results_dir: None,
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// Terminal counts reported after a drain.
#[derive(Debug, Clone, Copy)]
pub struct DrainStats {
    /// Jobs that finished with a result.
    pub done: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Jobs cancelled before running.
    pub cancelled: usize,
}

/// A bound, running server.
pub struct Server {
    queue: Arc<JobQueue>,
    stop: Arc<AtomicBool>,
    local_addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Configure the world pool, bind the listener, and start the accept
    /// loop and worker pool.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        remote_peering::memo::configure_world_pool(cfg.pool_entries, cfg.pool_bytes);
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let queue = Arc::new(JobQueue::new(cfg.queue_capacity));
        let worker_handles = JobQueue::spawn_workers(
            &queue,
            cfg.workers,
            WorkerContext {
                results_dir: cfg.results_dir.clone(),
            },
        );

        let stop = Arc::new(AtomicBool::new(false));
        let accept_handle = {
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            let read_timeout = cfg.read_timeout;
            std::thread::Builder::new()
                .name("rp-accept".to_string())
                .spawn(move || accept_loop(&listener, &queue, &stop, read_timeout))
                .expect("spawn accept thread")
        };

        Ok(Server {
            queue,
            stop,
            local_addr,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The queue, for in-process submissions in tests.
    pub fn queue(&self) -> &Arc<JobQueue> {
        &self.queue
    }

    /// Begin the drain: stop accepting connections and submissions.
    /// Idempotent; `join` completes it.
    pub fn trigger_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.queue.drain();
    }

    /// Complete the drain: wait for the accept loop (and every connection
    /// it spawned), then for the workers to finish all accepted jobs.
    pub fn join(mut self) -> DrainStats {
        self.trigger_shutdown();
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        // With zero workers the queue may still hold pending jobs; they
        // were never accepted for execution by anyone, so this only waits
        // when a worker exists to make progress.
        let (_, _, done, failed, cancelled) = self.queue.counts();
        DrainStats {
            done,
            failed,
            cancelled,
        }
    }

    /// Serve until SIGTERM or SIGINT (unix), then drain and return.
    #[cfg(unix)]
    pub fn run_until_signal(self) -> DrainStats {
        install_signal_handlers();
        while !SIGNALLED.load(Ordering::SeqCst) && !self.stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.join()
    }

    /// Non-unix fallback: serve until `POST /v1/shutdown` flips the stop
    /// flag.
    #[cfg(not(unix))]
    pub fn run_until_signal(self) -> DrainStats {
        while !self.stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.join()
    }
}

#[cfg(unix)]
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// SIGTERM/SIGINT → set a flag; the serve loop polls it. Raw `signal(2)`
/// via the C runtime keeps the handler async-signal-safe (one atomic
/// store) without a libc crate dependency.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

fn accept_loop(
    listener: &TcpListener,
    queue: &Arc<JobQueue>,
    stop: &Arc<AtomicBool>,
    read_timeout: Duration,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let queue = Arc::clone(queue);
                let stop = Arc::clone(stop);
                let handle = std::thread::Builder::new()
                    .name("rp-conn".to_string())
                    .spawn(move || handle_connection(stream, &queue, &stop, read_timeout))
                    .expect("spawn connection thread");
                connections.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
        // Reap finished connection threads so a long-lived server doesn't
        // accumulate handles.
        connections.retain(|h| !h.is_finished());
    }
    for h in connections {
        let _ = h.join();
    }
}

fn handle_connection(
    mut stream: TcpStream,
    queue: &Arc<JobQueue>,
    stop: &Arc<AtomicBool>,
    read_timeout: Duration,
) {
    rp_obs::counter!("server.http.requests").inc();
    let response = match read_request(&stream, read_timeout) {
        Ok(req) => route(&req, queue, stop),
        Err(e) => Response::error(e.status, &e.reason),
    };
    if response.status >= 400 {
        rp_obs::counter!("server.http.errors").inc();
    }
    response.send(&mut stream);
}

fn route(req: &Request, queue: &Arc<JobQueue>, stop: &Arc<AtomicBool>) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let (queued, running, done, failed, cancelled) = queue.counts();
            let (pool_entries, pool_bytes) = remote_peering::memo::world_pool_stats();
            Response::json(
                200,
                &json!({
                    "status": "ok",
                    "accepting": queue.accepting(),
                    "jobs": {
                        "queued": queued,
                        "running": running,
                        "done": done,
                        "failed": failed,
                        "cancelled": cancelled,
                    },
                    "world_pool": {
                        "entries": pool_entries,
                        "bytes": pool_bytes,
                    },
                }),
            )
        }
        ("GET", ["metrics"]) => Response::json(200, &rp_obs::report::metrics_json()),
        ("POST", ["v1", "jobs"]) => submit(req, queue),
        ("GET", ["v1", "jobs"]) => list(req, queue),
        ("GET", ["v1", "jobs", id]) => status(id, queue),
        ("GET", ["v1", "jobs", id, "result"]) => result(id, queue),
        ("DELETE", ["v1", "jobs", id]) => cancel(id, queue),
        ("POST", ["v1", "shutdown"]) => {
            stop.store(true, Ordering::SeqCst);
            queue.drain();
            Response::json(202, &json!({ "draining": true }))
        }
        // Known paths with the wrong method are 405, everything else 404.
        (_, ["healthz"] | ["metrics"] | ["v1", "jobs"] | ["v1", "jobs", _])
        | (_, ["v1", "jobs", _, "result"] | ["v1", "shutdown"]) => {
            Response::error(405, &format!("method {} not allowed here", req.method))
        }
        _ => Response::error(404, &format!("no route for {}", req.path)),
    }
}

fn submit(req: &Request, queue: &Arc<JobQueue>) -> Response {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "body is not valid UTF-8"),
    };
    let value: Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("body is not valid JSON: {e:?}")),
    };
    let spec = match JobSpec::parse(&value) {
        Ok(s) => s,
        Err(e) => return Response::error(400, &format!("bad job spec: {e}")),
    };
    match queue.submit(spec) {
        Submit::Accepted(id) => Response::json(202, &json!({ "id": id, "state": "queued" })),
        Submit::Existing(id, state) => Response::json(
            200,
            &json!({ "id": id, "state": state.key(), "deduplicated": true }),
        ),
        Submit::Full => {
            let mut resp = Response::error(429, "job queue is full; retry shortly");
            resp.retry_after = Some(1);
            resp
        }
        Submit::Draining => Response::error(503, "server is draining; not accepting jobs"),
    }
}

fn list(req: &Request, queue: &Arc<JobQueue>) -> Response {
    let filter = match req.query_param("state") {
        None => None,
        Some(key) => match JobState::from_key(key) {
            Some(s) => Some(s),
            None => {
                return Response::error(
                    400,
                    &format!(
                        "unknown state {key:?} (queued | running | done | failed | cancelled)"
                    ),
                )
            }
        },
    };
    let jobs: Vec<Value> = queue
        .list(filter)
        .iter()
        .map(|r| record_json(r, queue, false))
        .collect();
    Response::json(200, &json!({ "jobs": Value::Array(jobs) }))
}

fn status(id: &str, queue: &Arc<JobQueue>) -> Response {
    match queue.status(id) {
        Some(rec) => Response::json(200, &record_json(&rec, queue, true)),
        None => Response::error(404, &format!("no job {id}")),
    }
}

fn result(id: &str, queue: &Arc<JobQueue>) -> Response {
    let Some(rec) = queue.status(id) else {
        return Response::error(404, &format!("no job {id}"));
    };
    match rec.state {
        JobState::Done => {
            let artifact = rec.result.as_ref().expect("done job has a result");
            Response {
                status: 200,
                body: artifact.artifact.clone().into_bytes(),
                retry_after: None,
            }
        }
        JobState::Failed => Response::error(
            500,
            rec.error.as_deref().unwrap_or("job failed without detail"),
        ),
        JobState::Cancelled => Response::error(409, &format!("job {id} was cancelled")),
        JobState::Queued | JobState::Running => Response::error(
            409,
            &format!("job {id} is {}; no result yet", rec.state.key()),
        ),
    }
}

fn cancel(id: &str, queue: &Arc<JobQueue>) -> Response {
    match queue.cancel(id) {
        None => Response::error(404, &format!("no job {id}")),
        Some(JobState::Queued) => Response::json(200, &json!({ "id": id, "state": "cancelled" })),
        Some(state) => Response::error(
            409,
            &format!(
                "job {id} is {}; only queued jobs can be cancelled",
                state.key()
            ),
        ),
    }
}

/// One job record as API JSON. `with_progress` adds the rp-obs progress
/// snapshot for running jobs (process-wide pipeline counters, see
/// `rp_obs::report::progress_snapshot`).
fn record_json(rec: &JobRecord, queue: &Arc<JobQueue>, with_progress: bool) -> Value {
    let mut entries: Vec<(String, Value)> = vec![
        ("id".to_string(), json!(rec.id.as_str())),
        ("kind".to_string(), json!(rec.spec.kind())),
        ("state".to_string(), json!(rec.state.key())),
    ];
    match rec.state {
        JobState::Queued => {
            if let Some(pos) = queue.queue_position(&rec.id) {
                entries.push(("queue_position".to_string(), json!(pos)));
            }
        }
        JobState::Running => {
            if let Some(started) = rec.started {
                entries.push((
                    "elapsed_ms".to_string(),
                    json!(started.elapsed().as_millis() as u64),
                ));
            }
            if with_progress {
                entries.push(("progress".to_string(), rp_obs::report::progress_snapshot()));
            }
        }
        JobState::Done => {
            if let (Some(s), Some(f)) = (rec.started, rec.finished) {
                entries.push((
                    "elapsed_ms".to_string(),
                    json!(f.duration_since(s).as_millis() as u64),
                ));
            }
            if let Some(result) = &rec.result {
                entries.push(("artifact".to_string(), json!(result.artifact_rel_path())));
                entries.push(("passed".to_string(), json!(result.passed)));
            }
        }
        JobState::Failed => {
            if let Some(e) = &rec.error {
                entries.push(("error".to_string(), json!(e.as_str())));
            }
        }
        JobState::Cancelled => {}
    }
    Value::Object(entries)
}
