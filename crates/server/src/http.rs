//! A deliberately tiny HTTP/1.1 subset over `std::net`, sized for a
//! localhost job API: one request per connection, JSON bodies only,
//! `Connection: close` on every response.
//!
//! The reader is defensive rather than general. Header and body sizes are
//! hard-capped, chunked transfer encoding is rejected, and every socket
//! read sits behind both a per-read timeout and an overall deadline, so a
//! slow-loris client costs one connection thread for a bounded time and
//! nothing else. Parse failures map to a status code + one-line JSON error
//! rather than a dropped connection.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Cap on the request line + headers.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;
/// Cap on the declared body size; larger submissions get 413 without the
/// server reading the body at all.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Raw query string (no leading `?`), empty when absent.
    pub query: String,
    /// Raw body bytes (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of `key` in the query string, percent-decoding skipped
    /// (the API's values are plain tokens).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Why a request could not be parsed, with the status it maps to.
#[derive(Debug)]
pub struct HttpError {
    /// Response status (400, 408, 413).
    pub status: u16,
    /// One-line human reason, returned as `{"error": ...}`.
    pub reason: String,
}

fn bad(status: u16, reason: impl Into<String>) -> HttpError {
    HttpError {
        status,
        reason: reason.into(),
    }
}

/// Read and parse one request from `stream`.
///
/// `read_timeout` bounds each socket read *and* seeds the overall deadline
/// (4x the per-read timeout), so trickled headers or bodies fail with 408
/// instead of pinning the connection thread.
pub fn read_request(stream: &TcpStream, read_timeout: Duration) -> Result<Request, HttpError> {
    stream
        .set_read_timeout(Some(read_timeout))
        .map_err(|e| bad(400, format!("socket setup failed: {e}")))?;
    let deadline = Instant::now() + read_timeout * 4;
    let mut reader = BufReader::new(stream);

    let request_line = read_line(&mut reader, deadline)?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(bad(400, format!("malformed request line {request_line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad(400, format!("unsupported protocol {version:?}")));
    }
    if !target.starts_with('/') {
        return Err(bad(
            400,
            format!("request target must be a path, got {target:?}"),
        ));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length = 0usize;
    let mut header_bytes = request_line.len();
    loop {
        let line = read_line(&mut reader, deadline)?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(bad(400, "headers exceed 8 KiB"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad(400, format!("malformed header line {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| bad(400, format!("bad Content-Length {value:?}")))?;
        } else if name == "transfer-encoding" {
            return Err(bad(400, "chunked transfer encoding is not supported"));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad(
            413,
            format!("body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte cap"),
        ));
    }

    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < body.len() {
        if Instant::now() > deadline {
            return Err(bad(408, "timed out reading request body"));
        }
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(bad(400, "connection closed mid-body")),
            Ok(n) => filled += n,
            Err(e) if would_block(&e) => {
                return Err(bad(408, "timed out reading request body"));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(bad(400, format!("read error: {e}"))),
        }
    }

    Ok(Request {
        method: method.to_string(),
        path,
        query,
        body,
    })
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Read one CRLF- (or bare-LF-) terminated line, with the header cap and
/// deadline applied. Returns the line without its terminator.
fn read_line(reader: &mut BufReader<&TcpStream>, deadline: Instant) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        if Instant::now() > deadline {
            return Err(bad(408, "timed out reading request"));
        }
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Err(bad(400, "connection closed before a full request"));
                }
                return Err(bad(400, "connection closed mid-line"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map_err(|_| bad(400, "request is not valid UTF-8"));
                }
                line.push(byte[0]);
                if line.len() > MAX_HEADER_BYTES {
                    return Err(bad(400, "request line exceeds 8 KiB"));
                }
            }
            Err(e) if would_block(&e) => {
                return Err(bad(408, "timed out reading request"));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(bad(400, format!("read error: {e}"))),
        }
    }
}

/// One response, always `Connection: close`.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes (JSON for the API, raw artifact bytes for results).
    pub body: Vec<u8>,
    /// Emit a `Retry-After: <seconds>` header (the 429 backpressure hint).
    pub retry_after: Option<u32>,
}

impl Response {
    /// A JSON response: the document plus a trailing newline, so `curl`
    /// output ends cleanly.
    pub fn json(status: u16, doc: &serde_json::Value) -> Response {
        let mut body = serde_json::to_string_pretty(doc)
            .unwrap_or_else(|_| "{}".to_string())
            .into_bytes();
        body.push(b'\n');
        Response {
            status,
            body,
            retry_after: None,
        }
    }

    /// A one-line `{"error": reason}` response (kept single-line so log
    /// scrapers and the tests can treat errors as records). Hand-assembled
    /// because the vendored serializer pretty-prints objects; a scalar
    /// string still renders on one line, which gives us the escaping.
    pub fn error(status: u16, reason: &str) -> Response {
        let escaped = serde_json::Value::String(reason.to_string());
        let body = format!("{{\"error\": {escaped}}}\n").into_bytes();
        Response {
            status,
            body,
            retry_after: None,
        }
    }

    /// Serialize and send. Write errors are ignored: the peer hung up and
    /// the connection is closing anyway.
    pub fn send(&self, stream: &mut TcpStream) {
        let reason = match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        };
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason,
            self.body.len()
        );
        if let Some(secs) = self.retry_after {
            head.push_str(&format!("Retry-After: {secs}\r\n"));
        }
        head.push_str("\r\n");
        let _ = stream.write_all(head.as_bytes());
        let _ = stream.write_all(&self.body);
        let _ = stream.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bodies_are_one_json_line() {
        let r = Response::error(400, "nope \"quoted\"");
        let text = String::from_utf8(r.body).unwrap();
        assert_eq!(text.matches('\n').count(), 1);
        assert!(text.ends_with('\n'));
        let doc: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
        assert_eq!(
            doc.get("error").and_then(serde_json::Value::as_str),
            Some("nope \"quoted\"")
        );
    }

    #[test]
    fn query_params_split_on_ampersands() {
        let req = Request {
            method: "GET".into(),
            path: "/v1/jobs".into(),
            query: "state=queued&limit=5".into(),
            body: Vec::new(),
        };
        assert_eq!(req.query_param("state"), Some("queued"));
        assert_eq!(req.query_param("limit"), Some("5"));
        assert_eq!(req.query_param("missing"), None);
    }
}
