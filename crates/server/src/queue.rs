//! The bounded job queue and its worker pool.
//!
//! One mutex-guarded table owns every job record; a condvar wakes workers
//! when work arrives and wakes waiters when states change. Workers drain
//! the pending deque onto [`crate::job::run_job`] — whose sweep/check
//! internals already fan out on the process-wide rayon pool — so the
//! worker count bounds *jobs* in flight, not threads.
//!
//! States move strictly `queued → running → done | failed`, or
//! `queued → cancelled`. A running job cannot be cancelled (the pipeline
//! has no safe preemption point), and a finished record is kept for the
//! server's lifetime so results stay fetchable and duplicate submissions
//! dedupe against completed work.

use crate::job::{run_job, JobResult, JobSpec};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the result is available.
    Done,
    /// The run panicked or the result could not be persisted.
    Failed,
    /// Cancelled while still queued; it never ran.
    Cancelled,
}

impl JobState {
    /// Wire name, as used in the API's `state` fields and filters.
    pub fn key(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`JobState::key`].
    pub fn from_key(key: &str) -> Option<JobState> {
        Some(match key {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            _ => return None,
        })
    }
}

/// Everything the server tracks about one job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Content-addressed id ([`JobSpec::id`]).
    pub id: String,
    /// The parsed spec.
    pub spec: Arc<JobSpec>,
    /// Current lifecycle state.
    pub state: JobState,
    /// Submission order (for stable listings).
    pub seq: u64,
    /// When the job was accepted.
    pub submitted: Instant,
    /// When a worker picked it up.
    pub started: Option<Instant>,
    /// When it reached a terminal state.
    pub finished: Option<Instant>,
    /// The result, once done.
    pub result: Option<Arc<JobResult>>,
    /// Failure detail, once failed.
    pub error: Option<String>,
}

/// How a submission was answered.
#[derive(Debug)]
pub enum Submit {
    /// New job, now queued.
    Accepted(String),
    /// A job with the same spec fingerprint already exists in this state;
    /// no new work was scheduled.
    Existing(String, JobState),
    /// The pending queue is at capacity (HTTP 429 + `Retry-After`).
    Full,
    /// The server is draining and accepts no new work (HTTP 503).
    Draining,
}

struct Inner {
    jobs: HashMap<String, JobRecord>,
    pending: VecDeque<String>,
    accepting: bool,
    running: usize,
    next_seq: u64,
}

/// The shared queue. Workers, the accept loop, and tests all hold it
/// behind one `Arc`.
pub struct JobQueue {
    inner: Mutex<Inner>,
    cv: Condvar,
    capacity: usize,
}

/// What workers need besides the queue itself.
#[derive(Debug, Clone, Default)]
pub struct WorkerContext {
    /// Persist finished artifacts under this directory (CLI-relative
    /// layout: `sweeps/<name>.json`, `check_report.json`, ...). `None`
    /// keeps results in memory only.
    pub results_dir: Option<PathBuf>,
}

impl JobQueue {
    /// An empty queue admitting at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(Inner {
                jobs: HashMap::new(),
                pending: VecDeque::new(),
                accepting: true,
                running: 0,
                next_seq: 0,
            }),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Submit a spec. Idempotent on the spec fingerprint: a queued,
    /// running, or done job with the same id *and the same spec* answers
    /// the submission without scheduling new work; failed and cancelled
    /// jobs are re-enqueued (retry semantics).
    ///
    /// Job ids are 64-bit FNV fingerprints, so two genuinely different
    /// specs can collide. Deduping on the id alone would then answer the
    /// second submission with the first job's record — and its artifact,
    /// which is the wrong result entirely. `submit` therefore verifies the
    /// stored spec matches before deduping; on a mismatch it counts
    /// `server.jobs.id_collision` and re-ids the newcomer with a salted
    /// suffix (`<id>-1`, `-2`, ...) so both jobs run and each id serves
    /// exactly the spec it was accepted for.
    pub fn submit(&self, spec: JobSpec) -> Submit {
        let id = spec.id();
        self.submit_with_id(spec, id)
    }

    /// [`JobQueue::submit`] with the content-addressed id supplied by the
    /// caller. Hidden: this exists so tests can force two distinct specs
    /// onto one id and exercise the collision path, which real FNV-64
    /// collisions are too rare to reach.
    #[doc(hidden)]
    pub fn submit_with_id(&self, spec: JobSpec, base_id: String) -> Submit {
        // The fingerprint hashes the Debug encoding, so Debug text is
        // exactly the pre-hash identity: equal text means equal spec.
        let canonical = format!("{spec:?}");
        let mut inner = self.inner.lock().unwrap();
        if !inner.accepting {
            return Submit::Draining;
        }
        let mut id = base_id.clone();
        let mut salt = 0u64;
        loop {
            match inner.jobs.get(&id) {
                Some(rec) if format!("{:?}", rec.spec) == canonical => match rec.state {
                    JobState::Queued | JobState::Running | JobState::Done => {
                        rp_obs::counter!("server.jobs.deduped").inc();
                        return Submit::Existing(id, rec.state);
                    }
                    // Retry semantics: reuse this id for the re-enqueue.
                    JobState::Failed | JobState::Cancelled => break,
                },
                Some(_) => {
                    // Same id, different spec: an id collision. Try the
                    // next salted variant.
                    rp_obs::counter!("server.jobs.id_collision").inc();
                    salt += 1;
                    id = format!("{base_id}-{salt}");
                }
                None => break,
            }
        }
        if inner.pending.len() >= self.capacity {
            rp_obs::counter!("server.jobs.rejected").inc();
            return Submit::Full;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.jobs.insert(
            id.clone(),
            JobRecord {
                id: id.clone(),
                spec: Arc::new(spec),
                state: JobState::Queued,
                seq,
                submitted: Instant::now(),
                started: None,
                finished: None,
                result: None,
                error: None,
            },
        );
        inner.pending.push_back(id.clone());
        rp_obs::counter!("server.jobs.submitted").inc();
        rp_obs::gauge!("server.queue.depth_hwm").record_max(inner.pending.len() as u64);
        drop(inner);
        self.cv.notify_all();
        Submit::Accepted(id)
    }

    /// Cancel a queued job. Returns the state the job was in (cancelling
    /// only succeeds from `Queued`); `None` for unknown ids.
    pub fn cancel(&self, id: &str) -> Option<JobState> {
        let mut inner = self.inner.lock().unwrap();
        let rec = inner.jobs.get_mut(id)?;
        let was = rec.state;
        if was == JobState::Queued {
            rec.state = JobState::Cancelled;
            rec.finished = Some(Instant::now());
            let idx = inner.pending.iter().position(|p| p == id);
            if let Some(i) = idx {
                inner.pending.remove(i);
            }
            rp_obs::counter!("server.jobs.cancelled").inc();
            drop(inner);
            self.cv.notify_all();
        }
        Some(was)
    }

    /// A snapshot of one record.
    pub fn status(&self, id: &str) -> Option<JobRecord> {
        self.inner.lock().unwrap().jobs.get(id).cloned()
    }

    /// A job's queue position (0 = next), while queued.
    pub fn queue_position(&self, id: &str) -> Option<usize> {
        self.inner
            .lock()
            .unwrap()
            .pending
            .iter()
            .position(|p| p == id)
    }

    /// Snapshots of every record (optionally state-filtered), in
    /// submission order.
    pub fn list(&self, state: Option<JobState>) -> Vec<JobRecord> {
        let inner = self.inner.lock().unwrap();
        let mut records: Vec<JobRecord> = inner
            .jobs
            .values()
            .filter(|r| state.map_or(true, |s| r.state == s))
            .cloned()
            .collect();
        records.sort_by_key(|r| r.seq);
        records
    }

    /// `(queued, running, done, failed, cancelled)` counts.
    pub fn counts(&self) -> (usize, usize, usize, usize, usize) {
        let inner = self.inner.lock().unwrap();
        let mut c = (0, 0, 0, 0, 0);
        for r in inner.jobs.values() {
            match r.state {
                JobState::Queued => c.0 += 1,
                JobState::Running => c.1 += 1,
                JobState::Done => c.2 += 1,
                JobState::Failed => c.3 += 1,
                JobState::Cancelled => c.4 += 1,
            }
        }
        c
    }

    /// Is the queue still accepting submissions?
    pub fn accepting(&self) -> bool {
        self.inner.lock().unwrap().accepting
    }

    /// Stop accepting; wake everyone so idle workers exit once the
    /// pending queue is empty. Already-queued jobs still run (drain).
    pub fn drain(&self) {
        self.inner.lock().unwrap().accepting = false;
        self.cv.notify_all();
    }

    /// Block until no job is queued or running (used by tests and the
    /// drain path's final barrier).
    pub fn wait_until_idle(&self) {
        let mut inner = self.inner.lock().unwrap();
        while !inner.pending.is_empty() || inner.running > 0 {
            inner = self.cv.wait(inner).unwrap();
        }
    }

    /// Spawn `n` worker threads draining this queue. Workers exit when
    /// the queue is draining *and* the pending deque is empty.
    pub fn spawn_workers(
        queue: &Arc<JobQueue>,
        n: usize,
        ctx: WorkerContext,
    ) -> Vec<std::thread::JoinHandle<()>> {
        (0..n)
            .map(|i| {
                let queue = Arc::clone(queue);
                let ctx = ctx.clone();
                std::thread::Builder::new()
                    .name(format!("rp-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &ctx))
                    .expect("spawn worker thread")
            })
            .collect()
    }
}

fn worker_loop(queue: &JobQueue, ctx: &WorkerContext) {
    loop {
        let (id, spec) = {
            let mut inner = queue.inner.lock().unwrap();
            loop {
                if let Some(id) = inner.pending.pop_front() {
                    inner.running += 1;
                    let rec = inner.jobs.get_mut(&id).expect("pending id has a record");
                    rec.state = JobState::Running;
                    rec.started = Some(Instant::now());
                    let spec = Arc::clone(&rec.spec);
                    break (id, spec);
                }
                if !inner.accepting {
                    return;
                }
                inner = queue.cv.wait(inner).unwrap();
            }
        };

        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| run_job(&spec)));
        rp_obs::histogram!("server.jobs.run_ms", rp_obs::metrics::TASK_MS_BUCKETS)
            .observe(t0.elapsed().as_secs_f64() * 1e3);

        // Persist before flipping the state: a job is only "done" once its
        // artifact is durable wherever the server was told to keep it.
        let settled = match outcome {
            Ok(result) => match persist(ctx, &result) {
                Ok(()) => Ok(Arc::new(result)),
                Err(e) => Err(format!("persist failed: {e}")),
            },
            Err(panic) => Err(format!("job panicked: {}", panic_text(&panic))),
        };

        let mut inner = queue.inner.lock().unwrap();
        inner.running -= 1;
        let rec = inner.jobs.get_mut(&id).expect("running id has a record");
        rec.finished = Some(Instant::now());
        match settled {
            Ok(result) => {
                rec.result = Some(result);
                rec.state = JobState::Done;
                rp_obs::counter!("server.jobs.completed").inc();
            }
            Err(e) => {
                rec.error = Some(e);
                rec.state = JobState::Failed;
                rp_obs::counter!("server.jobs.failed").inc();
            }
        }
        drop(inner);
        queue.cv.notify_all();
    }
}

fn persist(ctx: &WorkerContext, result: &JobResult) -> std::io::Result<()> {
    let Some(dir) = &ctx.results_dir else {
        return Ok(());
    };
    let path = dir.join(result.artifact_rel_path());
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&path, &result.artifact)
}

fn panic_text(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campaign_spec(threshold: f64) -> JobSpec {
        JobSpec::parse(
            &serde_json::from_str(&format!(
                "{{\"kind\": \"campaign\", \"params\": {{\"threshold_ms\": {threshold}}}}}"
            ))
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn state_keys_round_trip() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(JobState::from_key(s.key()), Some(s));
        }
        assert_eq!(JobState::from_key("paused"), None);
    }

    #[test]
    fn duplicate_submissions_dedupe_and_overflow_rejects() {
        let q = JobQueue::new(2);
        let first = q.submit(campaign_spec(10.0));
        let Submit::Accepted(id) = first else {
            panic!("expected acceptance, got {first:?}");
        };
        match q.submit(campaign_spec(10.0)) {
            Submit::Existing(other, JobState::Queued) => assert_eq!(other, id),
            other => panic!("expected dedupe, got {other:?}"),
        }
        assert!(matches!(q.submit(campaign_spec(11.0)), Submit::Accepted(_)));
        assert!(matches!(q.submit(campaign_spec(12.0)), Submit::Full));
        q.drain();
        assert!(matches!(q.submit(campaign_spec(13.0)), Submit::Draining));
    }

    #[test]
    fn id_collisions_do_not_serve_the_wrong_artifact() {
        let q = JobQueue::new(8);
        let a = campaign_spec(10.0);
        let b = campaign_spec(20.0);
        // Distinct specs — in reality their FNV-64 ids differ too, so force
        // them onto one id to stand in for a genuine 64-bit collision.
        let forced = a.id();
        assert_ne!(forced, b.id(), "test premise: the specs really differ");
        let Submit::Accepted(id_a) = q.submit_with_id(a.clone(), forced.clone()) else {
            panic!("first submission must be accepted");
        };
        assert_eq!(id_a, forced);
        // The colliding spec must NOT dedupe onto a's record: that would
        // hand b's submitter a's artifact. It gets a salted id instead.
        let Submit::Accepted(id_b) = q.submit_with_id(b.clone(), forced.clone()) else {
            panic!("colliding spec must be accepted as new work, not deduped");
        };
        assert_ne!(id_b, id_a, "collision must re-id, not alias");
        assert_eq!(id_b, format!("{forced}-1"));
        // Each id's record holds exactly the spec it was accepted for.
        assert_eq!(
            format!("{:?}", q.status(&id_a).unwrap().spec),
            format!("{a:?}")
        );
        assert_eq!(
            format!("{:?}", q.status(&id_b).unwrap().spec),
            format!("{b:?}")
        );
        // Resubmitting either spec under the forced id dedupes onto its own
        // record — the salt walk finds the true match.
        match q.submit_with_id(a, forced.clone()) {
            Submit::Existing(id, JobState::Queued) => assert_eq!(id, id_a),
            other => panic!("expected dedupe onto a's record, got {other:?}"),
        }
        match q.submit_with_id(b, forced) {
            Submit::Existing(id, JobState::Queued) => assert_eq!(id, id_b),
            other => panic!("expected dedupe onto b's record, got {other:?}"),
        }
    }

    #[test]
    fn cancel_only_hits_queued_jobs() {
        let q = JobQueue::new(8);
        let Submit::Accepted(id) = q.submit(campaign_spec(14.0)) else {
            panic!("expected acceptance");
        };
        assert_eq!(q.cancel(&id), Some(JobState::Queued));
        assert_eq!(q.status(&id).unwrap().state, JobState::Cancelled);
        // Second cancel reports the terminal state and changes nothing.
        assert_eq!(q.cancel(&id), Some(JobState::Cancelled));
        assert_eq!(q.cancel("no-such-id"), None);
        // Cancelled jobs left the pending deque entirely.
        assert_eq!(q.queue_position(&id), None);
    }
}
