//! Job specs and the shared `run_job` entry point.
//!
//! A job is one unit of reproduction work — a sweep, a check, or a single
//! probing campaign — described by a small JSON envelope. [`run_job`] is
//! the *only* code path that turns a spec into artifact bytes: the `repro`
//! CLI subcommands and the `repro serve` workers both call it, so a served
//! result is byte-identical to the CLI's by construction rather than by
//! test.
//!
//! Job identity is content-addressed: [`JobSpec::id`] fingerprints the
//! parsed (not raw) spec, so two submissions that normalize to the same
//! work — different key order, explicit defaults — share one job.

use remote_peering::metrics::{PreparedRun, RunMetrics};
use remote_peering::{Campaign, WorldConfig};
use rp_scenario::{Cell, ScenarioSpec};
use rp_testkit::CheckConfig;
use serde_json::{json, Value};
use std::fmt::Write as _;

/// One parsed, validated unit of work.
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// A full scenario sweep (`repro sweep` behind an envelope).
    Sweep {
        spec: ScenarioSpec,
        seed: u64,
        paper_scale: bool,
        replicates: Option<u64>,
        shards: usize,
        /// Reuse memoized worlds and probe sets across cells (the default).
        /// `false` is the reference arm: every cell rebuilds and re-probes
        /// from scratch. Artifacts are byte-identical either way.
        probe_reuse: bool,
    },
    /// The correctness harness (`repro check`).
    Check(CheckConfig),
    /// One probing campaign over one world/method coordinate: the smallest
    /// useful job, sized so a queue of hundreds stays cheap.
    Campaign {
        cell: Cell,
        seed: u64,
        paper_scale: bool,
        shards: usize,
    },
}

fn scale_flag(v: &Value, key: &str) -> Result<bool, String> {
    match v.get(key) {
        None => Ok(false),
        Some(s) => match s.as_str() {
            Some("test") => Ok(false),
            Some("paper") => Ok(true),
            _ => Err(format!("\"{key}\" must be \"test\" or \"paper\", got {s}")),
        },
    }
}

fn u64_field(v: &Value, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(n) => n
            .as_u64()
            .ok_or_else(|| format!("\"{key}\" must be a non-negative integer, got {n}")),
    }
}

impl JobSpec {
    /// Parse a job envelope. The common keys are `kind` (required:
    /// `sweep` | `check` | `campaign`), `seed` (default 42), `scale`
    /// (`test` default | `paper`), and `shards` (default 0 = auto);
    /// unknown keys are rejected so typos fail loudly at submission.
    pub fn parse(v: &Value) -> Result<JobSpec, String> {
        let obj = v
            .as_object()
            .ok_or_else(|| "job spec must be a JSON object".to_string())?;
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing \"kind\" (sweep | check | campaign)".to_string())?;
        let seed = u64_field(v, "seed", 42)?;
        let paper_scale = scale_flag(v, "scale")?;
        let shards = u64_field(v, "shards", 0)? as usize;
        match kind {
            "sweep" => {
                for (key, _) in obj {
                    if !matches!(
                        key.as_str(),
                        "kind"
                            | "seed"
                            | "scale"
                            | "shards"
                            | "replicates"
                            | "spec"
                            | "preset"
                            | "probe_reuse"
                    ) {
                        return Err(format!("unknown sweep key {key:?}"));
                    }
                }
                let spec = match (v.get("spec"), v.get("preset")) {
                    (Some(s), None) => {
                        ScenarioSpec::resolve_value(s).map_err(|e| e.message.clone())?
                    }
                    (None, Some(p)) => ScenarioSpec::resolve_value(&json!({ "preset": p }))
                        .map_err(|e| e.message.clone())?,
                    (Some(_), Some(_)) => {
                        return Err("give either \"spec\" or \"preset\", not both".to_string())
                    }
                    (None, None) => return Err("sweep needs a \"spec\" or \"preset\"".to_string()),
                };
                let replicates = match v.get("replicates") {
                    None => None,
                    Some(_) => Some(u64_field(v, "replicates", 0)?),
                };
                let probe_reuse = match v.get("probe_reuse") {
                    None => true,
                    Some(Value::Bool(b)) => *b,
                    Some(other) => {
                        return Err(format!("\"probe_reuse\" must be a boolean, got {other}"))
                    }
                };
                Ok(JobSpec::Sweep {
                    spec,
                    seed,
                    paper_scale,
                    replicates,
                    shards,
                    probe_reuse,
                })
            }
            "check" => Ok(JobSpec::Check(CheckConfig::from_value(v)?)),
            "campaign" => {
                for (key, _) in obj {
                    if !matches!(
                        key.as_str(),
                        "kind" | "seed" | "scale" | "shards" | "params"
                    ) {
                        return Err(format!("unknown campaign key {key:?}"));
                    }
                }
                let cell = match v.get("params") {
                    None => Cell { coords: Vec::new() },
                    Some(p) => {
                        let entries = p
                            .as_object()
                            .ok_or_else(|| "\"params\" must be a JSON object".to_string())?;
                        if entries.is_empty() {
                            Cell { coords: Vec::new() }
                        } else {
                            // Validate through the scenario grammar: one
                            // single-value axis per parameter, then take the
                            // grid's only cell.
                            let axes: Vec<Value> = entries
                                .iter()
                                .map(|(k, val)| {
                                    json!({
                                        "param": k.as_str(),
                                        "values": Value::Array(vec![val.clone()]),
                                    })
                                })
                                .collect();
                            let spec = ScenarioSpec::parse(&json!({
                                "name": "job",
                                "axes": Value::Array(axes),
                            }))
                            .map_err(|e| e.message)?;
                            spec.cells().remove(0)
                        }
                    }
                };
                Ok(JobSpec::Campaign {
                    cell,
                    seed,
                    paper_scale,
                    shards,
                })
            }
            other => Err(format!("unknown kind {other:?} (sweep | check | campaign)")),
        }
    }

    /// Content-addressed job id: the FNV-1a fingerprint of the parsed spec,
    /// rendered as 16 hex digits. Deterministic across processes.
    pub fn id(&self) -> String {
        format!("{:016x}", remote_peering::memo::fingerprint(self))
    }

    /// Short kind tag for listings and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Sweep { .. } => "sweep",
            JobSpec::Check(_) => "check",
            JobSpec::Campaign { .. } => "campaign",
        }
    }
}

/// Everything a finished job produced.
#[derive(Debug)]
pub struct JobResult {
    /// `sweep` | `check` | `campaign`.
    pub kind: &'static str,
    /// Output name (the artifact file stem for sweeps/campaigns).
    pub name: String,
    /// Exact artifact bytes, identical to what the CLI writes under its
    /// output directory.
    pub artifact: String,
    /// The human-readable digest the CLI prints to stdout (trailing
    /// newline included; `print!` it verbatim).
    pub digest: String,
    /// Did the job's own verdict pass? Always true except for a failed
    /// check harness.
    pub passed: bool,
    /// The artifact as a JSON document, for callers that post-process.
    pub doc: Value,
}

impl JobResult {
    /// Where the CLI would put this artifact, relative to its `--out` dir.
    pub fn artifact_rel_path(&self) -> String {
        match self.kind {
            "sweep" => format!("sweeps/{}.json", self.name),
            "check" => "check_report.json".to_string(),
            _ => format!("campaigns/{}.json", self.name),
        }
    }
}

/// Run one job to completion on the calling thread.
///
/// The compute runs under a `repro.run` span so rp-obs progress snapshots
/// and trace sinks see served jobs exactly like CLI runs. Rayon-parallel
/// stages inside (`run_sweep`, `run_check`) share the process-wide pool,
/// so the server's worker count bounds *jobs* in flight, not threads.
pub fn run_job(spec: &JobSpec) -> JobResult {
    match spec {
        JobSpec::Sweep {
            spec,
            seed,
            paper_scale,
            replicates,
            shards,
            probe_reuse,
        } => {
            let cfg = rp_scenario::SweepConfig {
                seed: *seed,
                paper_scale: *paper_scale,
                replicates: replicates.unwrap_or(spec.default_replicates),
                confidence: 0.95,
                resamples: 400,
                shards: *shards,
                reuse: *probe_reuse,
            };
            let out = {
                let _run = rp_obs::span("repro.run");
                rp_scenario::run_sweep(spec, &cfg)
            };
            let artifact = serde_json::to_string_pretty(&out).expect("serialize sweep output");
            JobResult {
                kind: "sweep",
                name: spec.name.clone(),
                artifact,
                digest: sweep_digest(&spec.name, &out),
                passed: true,
                doc: out,
            }
        }
        JobSpec::Check(cfg) => {
            let outcome = {
                let _run = rp_obs::span("repro.run");
                rp_testkit::run_check(cfg)
            };
            let doc = outcome.to_json();
            let mut artifact = serde_json::to_string_pretty(&doc).expect("serialize check report");
            artifact.push('\n');
            JobResult {
                kind: "check",
                name: "check".to_string(),
                artifact,
                digest: check_digest(&outcome),
                passed: outcome.passed(),
                doc,
            }
        }
        JobSpec::Campaign {
            cell,
            seed,
            paper_scale,
            shards,
        } => {
            let base = if *paper_scale {
                WorldConfig::paper_scale(*seed)
            } else {
                WorldConfig::test_scale(*seed)
            };
            let cfg = cell.apply_world(&base);
            let campaign = Campaign {
                shards: *shards,
                ..Campaign::default_paper()
            };
            let (doc, digest, name) = {
                let _run = rp_obs::span("repro.run");
                let run = PreparedRun::probe_cached(&cfg, &campaign);
                let metrics = RunMetrics::collect(&run, &cell.method_params());
                let name = format!("campaign_{}", spec.id());
                let metrics_json = Value::Object(
                    metrics
                        .named()
                        .iter()
                        .map(|(k, v)| (k.to_string(), json!(v)))
                        .collect(),
                );
                let doc = json!({
                    "schema": "rp-campaign/1",
                    "seed": seed,
                    "scale": if *paper_scale { "paper" } else { "test" },
                    "params": cell.params_json(),
                    "metrics": metrics_json,
                });
                let mut digest = String::new();
                let label = if cell.coords.is_empty() {
                    "defaults".to_string()
                } else {
                    cell.label()
                };
                let _ = writeln!(
                    digest,
                    "==== campaign:{} {}",
                    label,
                    "=".repeat(51_usize.saturating_sub(label.len()))
                );
                for (k, v) in metrics.named() {
                    let _ = writeln!(digest, "  {k:>18}  {v:10.4}");
                }
                (doc, digest, name)
            };
            let mut artifact = serde_json::to_string_pretty(&doc).expect("serialize campaign");
            artifact.push('\n');
            JobResult {
                kind: "campaign",
                name,
                artifact,
                digest,
                passed: true,
                doc,
            }
        }
    }
}

/// The sweep stdout digest, byte-identical to what `repro sweep` printed
/// before the server existed (the golden stdout pins hold).
fn sweep_digest(name: &str, out: &Value) -> String {
    let mut d = String::new();
    let _ = writeln!(
        d,
        "==== sweep:{} {}",
        name,
        "=".repeat(54_usize.saturating_sub(name.len()))
    );
    if let Some(cells) = out.get("cells").and_then(Value::as_array) {
        for cell in cells {
            let label = cell.get("label").and_then(Value::as_str).unwrap_or("?");
            let mark = if cell.get("baseline") == Some(&Value::Bool(true)) {
                " [baseline]"
            } else {
                ""
            };
            let _ = writeln!(d, "{label}{mark}");
            for name in ["precision", "recall", "remote_fraction", "econ_margin"] {
                let m = cell.get("metrics").and_then(|ms| ms.get(name));
                let mean = m
                    .and_then(|m| m.get("mean"))
                    .and_then(Value::as_f64)
                    .unwrap_or(f64::NAN);
                let ci = m.and_then(|m| m.get("t_ci")).and_then(Value::as_array);
                let (lo, hi) = match ci {
                    Some(b) if b.len() == 2 => (
                        b[0].as_f64().unwrap_or(f64::NAN),
                        b[1].as_f64().unwrap_or(f64::NAN),
                    ),
                    _ => (f64::NAN, f64::NAN),
                };
                let _ = writeln!(d, "  {name:>16}  {mean:8.4}  95% CI [{lo:8.4}, {hi:8.4}]");
            }
        }
    }
    d
}

/// The check stdout digest, byte-identical to the pre-server `repro check`
/// output (pinned by `GOLDEN_CHECK_STDOUT_FNV`).
fn check_digest(outcome: &rp_testkit::CheckOutcome) -> String {
    let mut d = String::new();
    let _ = writeln!(d, "==== check {}", "=".repeat(55));
    let _ = writeln!(
        d,
        "injected link faults: {} across {} transmit decisions",
        outcome.injected.total(),
        outcome.injected.decisions
    );
    for (kind, n) in outcome.injected.by_kind() {
        let _ = writeln!(d, "  {:>18}  {n}", kind.key());
    }
    let _ = writeln!(
        d,
        "scene faults: {} stale registry rows, {} dropped LG vantages",
        outcome.scene.stale_rows, outcome.scene.dropped_lgs
    );
    let _ = writeln!(
        d,
        "analyzed interfaces: {} clean, {} faulted",
        outcome.clean_analyzed, outcome.faulted_analyzed
    );
    let _ = writeln!(
        d,
        "invariants: {} checks, {} violations",
        outcome.harness.checks,
        outcome.harness.violations.len()
    );
    for v in &outcome.harness.violations {
        let _ = writeln!(d, "  VIOLATION {}: {}", v.invariant, v.detail);
    }
    let _ = writeln!(
        d,
        "fuzz: {} iterations per target, {} panics",
        outcome.fuzz.iterations,
        outcome.fuzz.panics.len()
    );
    for p in &outcome.fuzz.panics {
        let _ = writeln!(d, "  PANIC {p}");
    }
    let verdict = if outcome.passed() { "PASS" } else { "FAIL" };
    let _ = writeln!(d, "check: {verdict}");
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<JobSpec, String> {
        JobSpec::parse(&serde_json::from_str(text).expect("test JSON"))
    }

    #[test]
    fn envelope_parses_all_three_kinds() {
        let sweep = parse(r#"{"kind": "sweep", "preset": "smoke", "seed": 7}"#).unwrap();
        match &sweep {
            JobSpec::Sweep {
                spec,
                seed,
                replicates,
                ..
            } => {
                assert_eq!(spec.name, "smoke");
                assert_eq!(*seed, 7);
                assert_eq!(*replicates, None);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        let check = parse(r#"{"kind": "check", "faults": 5, "fuzz": 6}"#).unwrap();
        match &check {
            JobSpec::Check(cfg) => {
                assert_eq!(cfg.fault_trials, 5);
                assert_eq!(cfg.fuzz_iters, 6);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        let camp =
            parse(r#"{"kind": "campaign", "params": {"threshold_ms": 12.5}, "seed": 3}"#).unwrap();
        match &camp {
            JobSpec::Campaign { cell, seed, .. } => {
                assert_eq!(cell.label(), "threshold_ms=12.5");
                assert_eq!(*seed, 3);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn envelope_rejects_garbage_with_a_reason() {
        assert!(parse(r#"{"seed": 1}"#).unwrap_err().contains("kind"));
        assert!(parse(r#"{"kind": "dance"}"#).unwrap_err().contains("dance"));
        assert!(parse(r#"{"kind": "sweep"}"#)
            .unwrap_err()
            .contains("preset"));
        assert!(parse(r#"{"kind": "sweep", "preset": "smoke", "sepc": 1}"#)
            .unwrap_err()
            .contains("sepc"));
        assert!(
            parse(r#"{"kind": "campaign", "params": {"not_a_param": 1}}"#)
                .unwrap_err()
                .contains("not_a_param")
        );
        assert!(parse(r#"{"kind": "check", "scale": "huge"}"#).is_err());
    }

    #[test]
    fn job_ids_are_content_addressed() {
        let a = parse(r#"{"kind": "campaign", "params": {"threshold_ms": 10}, "seed": 1}"#);
        let b = parse(r#"{"seed": 1, "params": {"threshold_ms": 10}, "kind": "campaign"}"#);
        let c = parse(r#"{"kind": "campaign", "params": {"threshold_ms": 11}, "seed": 1}"#);
        assert_eq!(a.as_ref().unwrap().id(), b.unwrap().id());
        assert_ne!(a.unwrap().id(), c.unwrap().id());
    }

    #[test]
    fn campaign_jobs_produce_a_digest_and_schema_tagged_artifact() {
        let spec = parse(r#"{"kind": "campaign", "params": {"threshold_ms": 10}}"#).unwrap();
        let result = run_job(&spec);
        assert_eq!(result.kind, "campaign");
        assert!(result.passed);
        assert!(result.digest.starts_with("==== campaign:threshold_ms=10 "));
        assert!(result.artifact.ends_with('\n'));
        assert_eq!(
            result.doc.get("schema").and_then(Value::as_str),
            Some("rp-campaign/1")
        );
        assert_eq!(
            result.artifact_rel_path(),
            format!("campaigns/campaign_{}.json", spec.id())
        );
        // Same spec, same bytes: the campaign path is deterministic.
        let again = run_job(&spec);
        assert_eq!(again.artifact, result.artifact);
        assert_eq!(again.digest, result.digest);
    }
}
