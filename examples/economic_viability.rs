//! The section 5 economic model: when does remote peering pay?
//!
//! ```text
//! cargo run --release --example economic_viability
//! ```
//!
//! Sweeps the decay parameter `b` (how quickly extra IXPs stop helping) and
//! the cost structure, printing the optimal direct/remote IXP counts
//! (eqs. 11 and 13) and the viability condition (eq. 14), then connects the
//! model back to the measurements by fitting `b` to a simulated offload
//! curve, exactly as section 5.1 fits the RedIRIS data.

use remote_peering::econ::{
    fit_decay, optimal_direct, optimal_remote, viability_margin, viable, CostParams,
};
use remote_peering::offload::{OffloadStudy, PeerGroup};
use remote_peering::world::{World, WorldConfig};

fn main() {
    let base = CostParams::example();
    base.validate()
        .expect("example parameters respect ineqs. 7-8");
    println!(
        "cost structure: transit p={}, direct peering u={} per unit + g={} per IXP, \
         remote peering v={} per unit + h={} per IXP",
        base.p, base.u, base.v, base.g, base.h
    );

    println!(
        "\n{:>6} {:>8} {:>8} {:>8} {:>10} {:>8}",
        "b", "n~", "d~", "m~", "margin", "viable"
    );
    for b in [0.1, 0.25, 0.4, 0.55, 0.7, 0.9, 1.2, 1.6, 2.2] {
        let p = CostParams { b, ..base };
        let d = optimal_direct(&p);
        let r = optimal_remote(&p);
        println!(
            "{b:>6.2} {:>8.2} {:>8.3} {:>8.2} {:>10.3} {:>8}",
            d.n,
            d.d,
            r.m,
            viability_margin(&p),
            viable(&p),
        );
    }
    let boundary = (base.g * (base.p - base.v) / (base.h * (base.p - base.u))).ln();
    println!(
        "\neq. 14 boundary: remote peering is viable exactly when b <= {boundary:.3} \
         (networks with globally spread traffic)"
    );

    // The African-market argument (section 5.2): little local offload
    // opportunity (h << g) and expensive transit make remote peering the
    // only economical path to the big exchanges.
    let dense = CostParams {
        p: 1.0,
        u: 0.3,
        v: 0.6,
        g: 0.1,
        h: 0.07,
        b: 1.0,
    };
    let sparse = CostParams {
        p: 2.4,
        u: 0.3,
        v: 0.6,
        g: 0.45,
        h: 0.05,
        b: 1.0,
    };
    println!(
        "\ndense interconnection market:  margin {:.2} -> viable: {}",
        viability_margin(&dense),
        viable(&dense)
    );
    println!(
        "sparse interconnection market: margin {:.2} -> viable: {} (h << g, expensive transit)",
        viability_margin(&sparse),
        viable(&sparse)
    );

    // Close the loop with section 4: fit b to a simulated offload curve.
    println!("\nfitting t = e^(-b k) to a simulated greedy offload curve...");
    let world = World::build(&WorldConfig::test_scale(11));
    let study = OffloadStudy::new(&world);
    let total = (world.contributions.total_inbound() + world.contributions.total_outbound()).0;
    let steps = study.greedy(PeerGroup::All, 12);
    let floor = steps
        .last()
        .map(|s| (s.remaining_in + s.remaining_out).0)
        .unwrap_or(0.0);
    let offloadable = (total - floor).max(1e-9);
    let fractions: Vec<f64> = std::iter::once(1.0)
        .chain(
            steps
                .iter()
                .map(|s| ((s.remaining_in + s.remaining_out).0 - floor).max(0.0) / offloadable),
        )
        .collect();
    match fit_decay(&fractions) {
        Some(fit) => println!(
            "fitted b = {:.3} (R^2 in log space: {:.3}); at that b the model says m~ = {:.2}",
            fit.b,
            fit.r_squared,
            optimal_remote(&CostParams {
                b: fit.b.max(0.01),
                ..base
            })
            .m
        ),
        None => println!("curve too short to fit"),
    }
}
