//! The Figure 1 scene, built by hand on the raw packet simulator.
//!
//! ```text
//! cargo run --release --example detect_remote_peering
//! ```
//!
//! The paper's Figure 1 shows a looking-glass server probing two member
//! interfaces of an IXP: one network peering directly (its router sits in
//! the IXP's colo) and one peering remotely (its router sits in another
//! city, reaching the fabric over a remote-peering provider's layer-2
//! pseudowire). This example constructs exactly that scene with
//! `rp-netsim` primitives and shows the two signals the methodology rests
//! on:
//!
//! 1. the remote member's minimum RTT carries its geography, and
//! 2. both replies arrive with an intact initial TTL (the pseudowire is
//!    invisible on layer 3) — while a registry-stale target behind a real
//!    IP hop betrays itself by a decremented TTL.

use remote_peering::netsim::{DelayModel, Network, RouterBehavior};
use remote_peering::types::geo;
use remote_peering::types::{SimDuration, SimTime};
use std::net::Ipv4Addr;

fn ip(s: &str) -> Ipv4Addr {
    s.parse().unwrap()
}

fn main() {
    let mut net = Network::new(2014);

    // The IXP's layer-2 fabric in Amsterdam, with an LG server inside the
    // peering subnet.
    let fabric = net.add_switch();
    let lg = net.add_host();
    let (_, lg_port) = net.connect(fabric, lg, DelayModel::with_one_way_ms(0.05));
    net.bind_host(lg, lg_port, ip("10.0.0.1"));

    // Directly peering network: colo cross-connect, TTL 255 stack.
    let direct = net.add_router(RouterBehavior {
        initial_ttl: 255,
        ..Default::default()
    });
    let (_, dp) = net.connect(fabric, direct, DelayModel::with_one_way_ms(0.4));
    net.bind_router(direct, dp, ip("10.0.0.10"));

    // Remotely peering network: its router sits in Madrid; a remote-peering
    // provider carries its frames to the Amsterdam fabric over a pseudowire
    // of two switches and a long-haul span.
    let ams = geo::city("Amsterdam").location;
    let madrid = geo::city("Madrid").location;
    let span_ms = ams.fiber_delay_ms(madrid);
    println!(
        "Madrid-Amsterdam fiber span: {:.0} km great-circle, {:.2} ms one way",
        ams.distance_km(madrid),
        span_ms
    );
    let pw_ixp = net.add_switch();
    let pw_far = net.add_switch();
    net.connect(fabric, pw_ixp, DelayModel::with_one_way_ms(0.05));
    net.connect(pw_ixp, pw_far, DelayModel::with_one_way_ms(span_ms));
    let remote = net.add_router(RouterBehavior {
        initial_ttl: 64,
        ..Default::default()
    });
    let (_, rp) = net.connect(pw_far, remote, DelayModel::with_one_way_ms(0.3));
    net.bind_router(remote, rp, ip("10.0.0.20"));

    // Registry-stale target: the listed address 10.0.0.30 actually lives on
    // a router one IP hop behind the fabric-facing device.
    let front = net.add_router(RouterBehavior::default());
    let (_, f_fab) = net.connect(fabric, front, DelayModel::with_one_way_ms(0.3));
    net.bind_router(front, f_fab, ip("10.0.0.31"));
    let inner = net.add_router(RouterBehavior {
        initial_ttl: 255,
        ..Default::default()
    });
    let (f_in, i_port) = net.connect(front, inner, DelayModel::with_one_way_ms(1.0));
    net.bind_router(front, f_in, ip("192.168.0.1"));
    net.bind_router(inner, i_port, ip("10.0.0.30"));
    let front_r = net.router_mut(front);
    front_r.add_proxy_arp(f_fab, ip("10.0.0.30"));
    front_r.add_route(ip("10.0.0.30"), f_in);
    front_r.set_default_route(f_fab);
    front_r.set_proxy_arp_all(f_in);
    net.router_mut(inner).set_default_route(i_port);

    // Ping each target eight times, spread over a simulated hour.
    for (k, target) in ["10.0.0.10", "10.0.0.20", "10.0.0.30"].iter().enumerate() {
        for q in 0..8u64 {
            let at = SimTime::ZERO
                + SimDuration::from_mins(q * 7 + k as u64)
                + SimDuration::from_secs(1);
            net.plan_ping(lg, at, ip(target));
        }
    }
    net.run_to_completion();

    println!("\n{:<12} {:>10} {:>8}  verdict", "target", "min RTT", "TTL");
    for target in ["10.0.0.10", "10.0.0.20", "10.0.0.30"] {
        let outcomes: Vec<_> = net
            .host(lg)
            .outcomes()
            .iter()
            .filter(|o| o.target == ip(target))
            .filter_map(|o| o.reply)
            .collect();
        let min = outcomes
            .iter()
            .map(|r| r.rtt.as_millis_f64())
            .fold(f64::INFINITY, f64::min);
        let ttl = outcomes.first().map(|r| r.ttl).unwrap_or(0);
        let verdict = if !matches!(ttl, 64 | 255) {
            "discard: TTL betrays an extra IP hop (stale registry entry)"
        } else if min >= 10.0 {
            "REMOTE peer (geography shows through the layer-2 pseudowire)"
        } else {
            "direct peer"
        };
        println!("{target:<12} {min:>8.2}ms {ttl:>8}  {verdict}");
    }
    println!(
        "\nevents simulated: {} (deterministic: rerun and compare)",
        net.events_processed()
    );
}
