//! A std-only client for `repro serve`: submit a job, poll it to a
//! terminal state, fetch the result, and (optionally) byte-compare it
//! against a CLI-produced artifact.
//!
//! ```text
//! repro serve --addr 127.0.0.1:8080 &
//! repro sweep smoke --out results
//! cargo run --example client -- --addr 127.0.0.1:8080 \
//!     --job sweep --expect results/sweeps/smoke.json
//! ```
//!
//! Exits 0 when the job completes (and matches `--expect`, if given),
//! nonzero otherwise. CI uses this as the serve smoke test.

use serde_json::Value;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

struct Args {
    addr: String,
    job: String,
    seed: u64,
    faults: u64,
    fuzz: u64,
    expect: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: client --addr HOST:PORT [--job sweep|check] [--seed N] \
         [--faults N] [--fuzz N] [--expect FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: String::new(),
        job: "sweep".to_string(),
        seed: 42,
        faults: 40,
        fuzz: 60,
        expect: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                usage();
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--job" => args.job = value("--job"),
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--faults" => args.faults = value("--faults").parse().unwrap_or_else(|_| usage()),
            "--fuzz" => args.fuzz = value("--fuzz").parse().unwrap_or_else(|_| usage()),
            "--expect" => args.expect = Some(value("--expect")),
            _ => usage(),
        }
    }
    if args.addr.is_empty() || !matches!(args.job.as_str(), "sweep" | "check") {
        usage();
    }
    args
}

/// One HTTP/1.1 request over a fresh connection (the server closes after
/// each response). Returns `(status, body)`.
fn http(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set read timeout");
    let payload = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{payload}",
        payload.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header block");
    let head = String::from_utf8_lossy(&raw[..header_end]);
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("response has a status code");
    (status, raw[header_end + 4..].to_vec())
}

fn json_body(body: &[u8]) -> Value {
    serde_json::from_str(&String::from_utf8_lossy(body)).expect("response body is JSON")
}

fn main() {
    let args = parse_args();
    let spec = match args.job.as_str() {
        "sweep" => format!(
            "{{\"kind\": \"sweep\", \"preset\": \"smoke\", \"seed\": {}}}",
            args.seed
        ),
        _ => format!(
            "{{\"kind\": \"check\", \"seed\": {}, \"faults\": {}, \"fuzz\": {}}}",
            args.seed, args.faults, args.fuzz
        ),
    };

    let (status, body) = http(&args.addr, "POST", "/v1/jobs", Some(&spec));
    if status != 202 && status != 200 {
        eprintln!(
            "submit failed: HTTP {status}: {}",
            String::from_utf8_lossy(&body).trim_end()
        );
        std::process::exit(1);
    }
    let doc = json_body(&body);
    let id = doc
        .get("id")
        .and_then(Value::as_str)
        .expect("submission response has an id")
        .to_string();
    eprintln!("job {id} submitted (HTTP {status})");

    let state = loop {
        let (status, body) = http(&args.addr, "GET", &format!("/v1/jobs/{id}"), None);
        assert_eq!(status, 200, "status poll failed: {status}");
        let doc = json_body(&body);
        let state = doc
            .get("state")
            .and_then(Value::as_str)
            .expect("status has a state")
            .to_string();
        match state.as_str() {
            "done" | "failed" | "cancelled" => break state,
            _ => std::thread::sleep(Duration::from_millis(150)),
        }
    };
    if state != "done" {
        eprintln!("job {id} ended {state}");
        std::process::exit(1);
    }

    let (status, artifact) = http(&args.addr, "GET", &format!("/v1/jobs/{id}/result"), None);
    if status != 200 {
        eprintln!("result fetch failed: HTTP {status}");
        std::process::exit(1);
    }
    eprintln!("job {id} done ({} artifact bytes)", artifact.len());

    match &args.expect {
        Some(path) => {
            let expected = std::fs::read(path).expect("read --expect file");
            if artifact == expected {
                eprintln!("served artifact matches {path} byte-for-byte");
            } else {
                eprintln!(
                    "MISMATCH: served artifact ({} bytes) differs from {path} ({} bytes)",
                    artifact.len(),
                    expected.len()
                );
                std::process::exit(1);
            }
        }
        None => {
            let mut stdout = std::io::stdout();
            stdout.write_all(&artifact).expect("write artifact");
        }
    }
}
