//! Quickstart: build a reduced world, probe one IXP, detect remote peers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the paper's section 3 pipeline end to end at test scale
//! (a few hundred ASes; builds and probes in seconds): generate the
//! simulated Internet, run the ping campaign at one IXP from its
//! looking-glass servers, apply the six filters, and classify interfaces
//! against the 10 ms remoteness threshold.

use remote_peering::campaign::Campaign;
use remote_peering::classify::{RttRange, REMOTENESS_THRESHOLD_MS};
use remote_peering::detect::DetectionStudy;
use remote_peering::world::{World, WorldConfig};

fn main() {
    // Deterministic scenario: same seed, same world, same measurements.
    let world = World::build(&WorldConfig::test_scale(7));
    println!(
        "world: {} ASes, {} IXPs ({} with looking glasses), study network {}",
        world.topology.len(),
        world.scene.ixps.len(),
        world.studied_ixps().len(),
        world.topology.node(world.vantage).asn,
    );

    // Probe AMS-IX: the campaign materializes the IXP as a packet-level
    // layer-2 network and pings every listed member interface from the LG
    // servers, under the paper's rate limits.
    let ams = world
        .scene
        .ixps
        .iter()
        .find(|x| x.meta.acronym == "AMS-IX")
        .expect("AMS-IX is in the dataset")
        .id;
    let campaign = Campaign::default_paper();
    let samples = campaign.probe_ixp(&world, ams);
    println!("probed {} listed interfaces at AMS-IX", samples.len());

    // Filters + classification.
    let study = DetectionStudy::analyze_ixp(&world, ams, &samples);
    println!(
        "analyzed {} interfaces (filters discarded {:?} in the paper's order)",
        study.analyzed.len(),
        study.stats.in_order(),
    );
    println!(
        "remote interfaces (min RTT >= {REMOTENESS_THRESHOLD_MS} ms): {}",
        study.remote_count()
    );

    // Show a few detections with their distance class.
    let mut shown = 0;
    for a in &study.analyzed {
        let range = RttRange::of(a.min_rtt_ms);
        if range.is_remote() && shown < 5 {
            println!(
                "  {} -> min RTT {:6.2} ms  [{}]  {}",
                a.ip,
                a.min_rtt_ms,
                range,
                a.asn
                    .map(|asn| asn.to_string())
                    .unwrap_or_else(|| "unidentified".into()),
            );
            shown += 1;
        }
    }

    // The scene is ground truth: verify the conservative threshold made no
    // false calls.
    let confusion = remote_peering::validate::confusion(&world, &study);
    println!(
        "ground truth: precision {:.3}, recall {:.3} (false positives: {})",
        confusion.precision(),
        confusion.recall(),
        confusion.false_positive,
    );
}
