//! The section 4 offload study in miniature: how much transit traffic can a
//! RedIRIS-like NREN shift to (remote) peering?
//!
//! ```text
//! cargo run --release --example offload_study [--paper]
//! ```
//!
//! By default this runs at test scale (seconds); pass `--paper` for the
//! full ~31k-AS world the `repro` binary uses.

use remote_peering::offload::{GreedyMetric, OffloadStudy, PeerGroup};
use remote_peering::report::pct;
use remote_peering::types::IxpId;
use remote_peering::world::{World, WorldConfig};

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let cfg = if paper {
        WorldConfig::paper_scale(42)
    } else {
        WorldConfig::test_scale(42)
    };
    let world = World::build(&cfg);
    let study = OffloadStudy::new(&world);

    let total = world.contributions.total_inbound() + world.contributions.total_outbound();
    println!(
        "study network {} sends/receives {} of transit traffic with {} networks",
        world.topology.node(world.vantage).asn,
        total,
        world.contributions.contributors(),
    );

    // Candidate peers after the paper's exclusion rules, per peer group.
    for group in PeerGroup::ALL {
        println!(
            "peer group [{}]: {} candidate networks across 65 IXPs",
            group.label(),
            study.candidate_count(group),
        );
    }

    // The best single IXP to reach (figure 7's headline).
    let ranking = study.single_ixp_ranking();
    let (best, per_group) = ranking[0];
    println!(
        "\nbest single IXP: {} — offload potential {} (all policies) = {} of transit traffic",
        world.scene.ixp(best).meta.acronym,
        per_group[3],
        pct(per_group[3].fraction_of(total)),
    );

    // Greedy expansion (figure 9): diminishing marginal utility.
    println!("\ngreedy expansion, peer group 4 (all policies):");
    let steps = study.greedy(PeerGroup::All, 10);
    let mut prev = total;
    for (k, s) in steps.iter().enumerate() {
        let remaining = s.remaining_in + s.remaining_out;
        println!(
            "  +{} {:<12} remaining transit {}  (step gain {})",
            k + 1,
            world.scene.ixp(s.ixp).meta.acronym,
            remaining,
            prev - remaining,
        );
        prev = remaining;
    }
    let last = steps.last().expect("steps");
    let reduction = 1.0 - (last.remaining_in + last.remaining_out).0 / total.0;
    println!(
        "after {} IXPs: {} of transit traffic offloaded (the paper reaches ~25% with 65)",
        steps.len(),
        pct(reduction),
    );

    // Figure 10's generalized metric: reachable interfaces.
    let if_steps = study.greedy_by(PeerGroup::All, 5, GreedyMetric::Interfaces);
    let start = study.total_transit_interfaces();
    println!("\ninterfaces reachable only through transit (figure 10's metric):");
    println!("  0 IXPs: {:.2} billion", start as f64 / 1e9);
    for (k, s) in if_steps.iter().enumerate() {
        println!(
            "  {} IXPs: {:.2} billion (reached {})",
            k + 1,
            s.remaining_interfaces as f64 / 1e9,
            world.scene.ixp(s.ixp).meta.acronym,
        );
    }

    // Overlap (figure 8): what the second-best IXP is still worth.
    if ranking.len() >= 2 {
        let (second, full) = ranking[1];
        let residual = study.remaining_after(best, second, PeerGroup::All);
        println!(
            "\nsecond IXP {}: full potential {}, but only {} remains after fully \
             realizing {} first (membership overlap)",
            world.scene.ixp(second).meta.acronym,
            full[3],
            residual,
            world.scene.ixp(IxpId(best.0)).meta.acronym,
        );
    }
}
