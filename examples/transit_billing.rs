//! Transit billing: what offloading does to the 95th-percentile invoice.
//!
//! ```text
//! cargo run --release --example transit_billing
//! ```
//!
//! Section 2.1: transit is metered in 5-minute intervals and billed monthly
//! on the 95th percentile of the interval rates. Figure 5b's point is that
//! the offload-potential series peaks *together with* the total, so
//! shifting it to peering cuts the billable peak, not just the average.
//! This example builds a month of NetFlow-style traffic, meters it through
//! the collector, and prices the before/after difference.

use remote_peering::offload::{OffloadStudy, PeerGroup};
use remote_peering::traffic::netflow::{percentile_95, FlowCollector, FlowRecord};
use remote_peering::traffic::series::{
    aggregate_series, network_series, SeriesParams, BINS_PER_DAY,
};
use remote_peering::types::{Bps, IxpId, NetworkId};
use remote_peering::world::{World, WorldConfig};

fn main() {
    let world = World::build(&WorldConfig::test_scale(5));
    let study = OffloadStudy::new(&world);
    let all_ixps: Vec<IxpId> = world.scene.ixps.iter().map(|x| x.id).collect();
    let cone = study.reachable_cone(&all_ixps, PeerGroup::All);

    // --- Full-fidelity NetFlow for a handful of top contributors: the
    // collector path a border router would feed.
    let mut ranked: Vec<(f64, NetworkId)> = world
        .topology
        .ids()
        .map(|id| (world.contributions.inbound[id.index()].0, id))
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let params = SeriesParams {
        seed: 5,
        bins: 30 * BINS_PER_DAY,
        ..Default::default()
    };
    let mut collector = FlowCollector::new(params.bins);
    for (rank, &(rate, id)) in ranked.iter().take(5).enumerate() {
        let series = network_series(
            Bps(rate),
            world.topology.node(id).home_city,
            id.0 as u64,
            &params,
        );
        for (bin, r) in series.iter().enumerate() {
            collector.ingest(&FlowRecord {
                bin: bin as u32,
                src: id,
                dst: world.vantage,
                bytes: (r.0 * 300.0 / 8.0) as u64,
            });
        }
        println!(
            "top-{} contributor {}: avg {}",
            rank + 1,
            world.topology.node(id).asn,
            Bps(rate)
        );
    }
    println!(
        "collector ingested {} records; top-5 aggregate 95th percentile: {}",
        collector.records(),
        percentile_95(&collector.series()),
    );

    // --- Aggregate month for the whole transit mix, before and after
    // offload (phase-bucketed aggregation — exact for the deterministic
    // part, seconds for 30 days x every contributor).
    let series_of = |only_covered: bool| -> Vec<Bps> {
        aggregate_series(
            world.topology.ids().filter_map(|id| {
                let r = world.contributions.inbound[id.index()];
                if r.0 > 0.0 && (!only_covered || cone.contains(id)) {
                    Some((r, world.topology.node(id).home_city))
                } else {
                    None
                }
            }),
            &params,
        )
    };
    let total = series_of(false);
    let offloadable = series_of(true);
    let after: Vec<Bps> = total
        .iter()
        .zip(&offloadable)
        .map(|(t, o)| *t - *o)
        .collect();

    let p95_before = percentile_95(&total);
    let p95_after = percentile_95(&after);
    println!("\ninbound transit, one month at 5-minute metering:");
    println!("  95th percentile before offload: {p95_before}");
    println!("  95th percentile after offload:  {p95_after}");
    let price_per_mbps = 1.2; // $/Mbps/month, a plausible 2013 rate
    println!(
        "  at ${price_per_mbps}/Mbps/month: invoice {} -> {} (saving ${:.0}/month)",
        format_args!("${:.0}", p95_before.as_mbps() * price_per_mbps),
        format_args!("${:.0}", p95_after.as_mbps() * price_per_mbps),
        (p95_before.as_mbps() - p95_after.as_mbps()) * price_per_mbps,
    );
    println!(
        "\nthe billable peak drops by {:.1}% because the offloadable traffic peaks\n\
         together with the total (figure 5b) — offload cuts bills, not just averages",
        100.0 * (1.0 - p95_after.0 / p95_before.0)
    );
}
