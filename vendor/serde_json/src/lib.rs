//! Offline vendored stand-in for `serde_json`.
//!
//! Unlike the vendored `serde` (which is marker-only), this crate really
//! works: [`Value`] is a full JSON tree, [`json!`] builds one from literal
//! syntax, and [`to_string_pretty`] emits valid, escaped JSON. The
//! conversion path is the [`ToJson`] trait rather than serde's
//! `Serialize`, implemented for every primitive, tuple, and container the
//! experiment outputs use.
//!
//! Object keys keep insertion order (like serde_json's `preserve_order`
//! feature), so regenerated result files diff cleanly.

use std::fmt;

/// A JSON number: integers stay integers in the output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    I(i64),
    /// Unsigned integer (for values above `i64::MAX`).
    U(u64),
    /// Floating point.
    F(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::I(v) => write!(f, "{v}"),
            Number::U(v) => write!(f, "{v}"),
            Number::F(v) => {
                if v.is_finite() {
                    // Round-trippable and still JSON-legal: integers gain a
                    // trailing ".0" just like serde_json.
                    if *v == v.trunc() && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no NaN/Inf; serde_json errors here, we emit
                    // null so diagnostic dumps never die mid-write.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    fn write_pretty(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&" ".repeat(indent + STEP));
                    item.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (k, (key, value)) in entries.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&" ".repeat(indent + STEP));
                    escape_into(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_pretty(&mut s, 0);
        f.write_str(&s)
    }
}

impl Value {
    /// Object member lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members (in document order) if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value as `f64` (any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::I(v)) => Some(*v as f64),
            Value::Number(Number::U(v)) => Some(*v as f64),
            Value::Number(Number::F(v)) => Some(*v),
            _ => None,
        }
    }

    /// Numeric value as `u64` if non-negative and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::I(v)) if *v >= 0 => Some(*v as u64),
            Value::Number(Number::U(v)) => Some(*v),
            _ => None,
        }
    }

    /// Numeric value as `i64` if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I(v)) => Some(*v),
            Value::Number(Number::U(v)) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }
}

/// Parse or serialization failure, with a human-readable reason.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json (vendored): {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Maximum container nesting accepted by [`from_str`]. The parser is
/// recursive-descent, so without a cap a document like `[[[[…` converts
/// attacker-controlled input length into stack depth and aborts the whole
/// process with a stack overflow instead of returning an `Err`.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.nested(Parser::parse_object),
            Some(b'[') => self.nested(Parser::parse_array),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn nested(
        &mut self,
        inner: fn(&mut Parser<'a>) -> Result<Value, Error>,
    ) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.depth += 1;
        let result = inner(self);
        self.depth -= 1;
        result
    }

    fn parse_literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect_byte(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect_byte(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            match code {
                                // A high surrogate must be followed by a
                                // low one; decode the pair to one scalar.
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                        return Err(self.err("lone surrogate in \\u escape"));
                                    }
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(self.err("unpaired surrogate in \\u escape"));
                                    }
                                    let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    s.push(
                                        char::from_u32(scalar)
                                            .ok_or_else(|| self.err("bad surrogate pair"))?,
                                    );
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(self.err("lone surrogate in \\u escape"));
                                }
                                _ => s.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("bad \\u escape"))?,
                                ),
                            }
                            // The shared escape epilogue below advances one
                            // byte; parse_hex4 left pos on the last hex
                            // digit's successor, so step back to compensate.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let c = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Four hex digits at the cursor (the payload of a `\u` escape);
    /// leaves the cursor just past them.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        // Overflowing literals like `1e999` parse to infinity, which JSON
        // cannot represent (our writer falls back to `null` for it), so an
        // input whose magnitude exceeds f64 is a parse error, not a value.
        let float = |p: &Parser<'_>| -> Result<Value, Error> {
            let v: f64 = text.parse().map_err(|_| p.err("invalid number"))?;
            if !v.is_finite() {
                return Err(p.err("number out of range"));
            }
            Ok(Value::Number(Number::F(v)))
        };
        if is_float {
            float(self)
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Value::Number(Number::I(v)))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Value::Number(Number::U(v)))
        } else {
            float(self)
        }
    }
}

/// Parse a JSON document into a [`Value`]. Round-trips everything
/// [`to_string_pretty`] emits; trailing non-whitespace is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Pretty-print `value` as two-space-indented JSON.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut s = String::new();
    value.write_pretty(&mut s, 0);
    Ok(s)
}

/// Compact single-line JSON.
pub fn to_string(value: &Value) -> Result<String, Error> {
    // Pretty output is already valid JSON; compactness is cosmetic here,
    // and result files prefer the readable form anyway.
    to_string_pretty(value)
}

/// Conversion into a [`Value`]; the vendored replacement for `Serialize`.
pub trait ToJson {
    /// Build the JSON tree for `self`.
    fn to_json(&self) -> Value;
}

/// Convert anything [`ToJson`] into a [`Value`] (used by [`json!`]).
pub fn to_value<T: ToJson + ?Sized>(v: &T) -> Value {
    v.to_json()
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! impl_to_json_signed {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value { Value::Number(Number::I(*self as i64)) }
        }
    )*};
}
impl_to_json_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_to_json_unsigned {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Value::Number(Number::I(v as i64))
                } else {
                    Value::Number(Number::U(v))
                }
            }
        }
    )*};
}
impl_to_json_unsigned!(u8, u16, u32, u64, usize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_json()).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_json()).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_json()).collect())
    }
}

macro_rules! impl_to_json_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json()),+])
            }
        }
    )*};
}
impl_to_json_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Build a [`Value`] from JSON-literal syntax.
///
/// Supports the grammar the experiment outputs use: objects with
/// string-literal keys, nested objects/arrays, and arbitrary Rust
/// expressions (converted through [`ToJson`]) in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ({ $($body:tt)+ }) => {{
        let mut object: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json_object_entries!(object; $($body)+);
        $crate::Value::Object(object)
    }};
    ([ $($body:tt)+ ]) => {{
        let mut array: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_array_entries!(array; $($body)+);
        $crate::Value::Array(array)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal: munch `"key": value` pairs into `$obj`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($obj:ident;) => {};
    ($obj:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $obj.extend([($key.to_string(), $crate::json!({ $($inner)* }))]);
        $($crate::json_object_entries!($obj; $($rest)*);)?
    };
    ($obj:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $obj.extend([($key.to_string(), $crate::json!([ $($inner)* ]))]);
        $($crate::json_object_entries!($obj; $($rest)*);)?
    };
    ($obj:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $obj.extend([($key.to_string(), $crate::Value::Null)]);
        $($crate::json_object_entries!($obj; $($rest)*);)?
    };
    ($obj:ident; $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $obj.extend([($key.to_string(), $crate::to_value(&$value))]);
        $($crate::json_object_entries!($obj; $($rest)*);)?
    };
}

/// Internal: munch array elements into `$arr`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_entries {
    ($arr:ident;) => {};
    ($arr:ident; { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $arr.extend([$crate::json!({ $($inner)* })]);
        $($crate::json_array_entries!($arr; $($rest)*);)?
    };
    ($arr:ident; [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $arr.extend([$crate::json!([ $($inner)* ])]);
        $($crate::json_array_entries!($arr; $($rest)*);)?
    };
    ($arr:ident; null $(, $($rest:tt)*)?) => {
        $arr.extend([$crate::Value::Null]);
        $($crate::json_array_entries!($arr; $($rest)*);)?
    };
    ($arr:ident; $value:expr $(, $($rest:tt)*)?) => {
        $arr.extend([$crate::to_value(&$value)]);
        $($crate::json_array_entries!($arr; $($rest)*);)?
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_keep_insertion_order_and_escape() {
        let v = json!({
            "b": 1,
            "a": "x\"y\n",
            "nested": {"k": [1, 2.5, true, null]},
            "opt_none": Option::<u32>::None,
        });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.find("\"b\"").unwrap() < s.find("\"a\"").unwrap());
        assert!(s.contains("\\\"y\\n"));
        assert!(s.contains("null"));
    }

    #[test]
    fn numbers_render_as_json() {
        assert_eq!(Number::I(-3).to_string(), "-3");
        assert_eq!(Number::U(u64::MAX).to_string(), u64::MAX.to_string());
        assert_eq!(Number::F(2.0).to_string(), "2.0");
        assert_eq!(Number::F(f64::NAN).to_string(), "null");
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let v = json!({
            "b": 1,
            "a": "x\"y\n",
            "neg": -2.5,
            "big": u64::MAX,
            "nested": {"k": [1, 2.5, true, null]},
            "empty_obj": {},
            "empty_arr": [],
        });
        let s = to_string_pretty(&v).unwrap();
        let back = from_str(&s).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("b").and_then(Value::as_u64), Some(1));
        assert_eq!(back.get("a").and_then(Value::as_str), Some("x\"y\n"));
        assert_eq!(back.get("neg").and_then(Value::as_f64), Some(-2.5));
        assert_eq!(back.get("big").and_then(Value::as_u64), Some(u64::MAX));
        let nested = back.get("nested").and_then(|n| n.get("k")).unwrap();
        assert_eq!(nested.as_array().unwrap().len(), 4);
        assert!(from_str("{\"unterminated\": ").is_err());
        assert!(from_str("[1, 2] trailing").is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // Past regression: unbounded recursion turned input length into
        // stack depth and aborted the process on documents like this one.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(from_str(&deep).is_err());
        let deep_obj = "{\"k\":".repeat(100_000) + "null" + &"}".repeat(100_000);
        assert!(from_str(&deep_obj).is_err());
        // Nesting below the cap still parses.
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(from_str(&ok).is_ok());
    }

    #[test]
    fn surrogate_escapes() {
        // Valid pair: U+1D11E (musical G clef).
        let v = from_str("\"\\uD834\\uDD1E\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1D11E}"));
        // Past regression: lone surrogates silently became U+FFFD.
        assert!(from_str("\"\\uD800\"").is_err());
        assert!(from_str("\"\\uDC00\"").is_err());
        assert!(from_str("\"\\uD800x\"").is_err());
        assert!(from_str("\"\\uD800\\u0041\"").is_err());
        // Non-surrogate escapes are unaffected.
        assert_eq!(from_str("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn overflowing_numbers_error() {
        // Past regression: 1e999 parsed to infinity, which re-serialized
        // as `null`.
        assert!(from_str("1e999").is_err());
        assert!(from_str("-1e999").is_err());
        assert!(from_str("[1, 1e999]").is_err());
        // Large but representable magnitudes still parse.
        assert!(from_str("1e308").is_ok());
        assert!(from_str("123456789012345678901234567890").is_ok());
    }

    #[test]
    fn expressions_and_containers_convert() {
        let rows = vec![(1u32, 2usize), (3, 4)];
        let arr: [usize; 3] = [7, 8, 9];
        let v = json!({"rows": rows, "arr": arr, "calc": 21 * 2});
        match &v {
            Value::Object(entries) => {
                assert_eq!(entries.len(), 3);
                assert_eq!(entries[2].1, Value::Number(Number::I(42)));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
