//! Offline vendored stand-in for `serde_json`.
//!
//! Unlike the vendored `serde` (which is marker-only), this crate really
//! works: [`Value`] is a full JSON tree, [`json!`] builds one from literal
//! syntax, and [`to_string_pretty`] emits valid, escaped JSON. The
//! conversion path is the [`ToJson`] trait rather than serde's
//! `Serialize`, implemented for every primitive, tuple, and container the
//! experiment outputs use.
//!
//! Object keys keep insertion order (like serde_json's `preserve_order`
//! feature), so regenerated result files diff cleanly.

use std::fmt;

/// A JSON number: integers stay integers in the output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    I(i64),
    /// Unsigned integer (for values above `i64::MAX`).
    U(u64),
    /// Floating point.
    F(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::I(v) => write!(f, "{v}"),
            Number::U(v) => write!(f, "{v}"),
            Number::F(v) => {
                if v.is_finite() {
                    // Round-trippable and still JSON-legal: integers gain a
                    // trailing ".0" just like serde_json.
                    if *v == v.trunc() && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no NaN/Inf; serde_json errors here, we emit
                    // null so diagnostic dumps never die mid-write.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    fn write_pretty(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&" ".repeat(indent + STEP));
                    item.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (k, (key, value)) in entries.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&" ".repeat(indent + STEP));
                    escape_into(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_pretty(&mut s, 0);
        f.write_str(&s)
    }
}

/// Serialization failure (never produced by this vendored build; kept so
/// call sites can `.expect()` exactly as with real serde_json).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json (vendored) error")
    }
}

impl std::error::Error for Error {}

/// Pretty-print `value` as two-space-indented JSON.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut s = String::new();
    value.write_pretty(&mut s, 0);
    Ok(s)
}

/// Compact single-line JSON.
pub fn to_string(value: &Value) -> Result<String, Error> {
    // Pretty output is already valid JSON; compactness is cosmetic here,
    // and result files prefer the readable form anyway.
    to_string_pretty(value)
}

/// Conversion into a [`Value`]; the vendored replacement for `Serialize`.
pub trait ToJson {
    /// Build the JSON tree for `self`.
    fn to_json(&self) -> Value;
}

/// Convert anything [`ToJson`] into a [`Value`] (used by [`json!`]).
pub fn to_value<T: ToJson + ?Sized>(v: &T) -> Value {
    v.to_json()
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! impl_to_json_signed {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value { Value::Number(Number::I(*self as i64)) }
        }
    )*};
}
impl_to_json_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_to_json_unsigned {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Value::Number(Number::I(v as i64))
                } else {
                    Value::Number(Number::U(v))
                }
            }
        }
    )*};
}
impl_to_json_unsigned!(u8, u16, u32, u64, usize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_json()).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_json()).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_json()).collect())
    }
}

macro_rules! impl_to_json_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json()),+])
            }
        }
    )*};
}
impl_to_json_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Build a [`Value`] from JSON-literal syntax.
///
/// Supports the grammar the experiment outputs use: objects with
/// string-literal keys, nested objects/arrays, and arbitrary Rust
/// expressions (converted through [`ToJson`]) in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ({ $($body:tt)+ }) => {{
        let mut object: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json_object_entries!(object; $($body)+);
        $crate::Value::Object(object)
    }};
    ([ $($body:tt)+ ]) => {{
        let mut array: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_array_entries!(array; $($body)+);
        $crate::Value::Array(array)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal: munch `"key": value` pairs into `$obj`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($obj:ident;) => {};
    ($obj:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $obj.extend([($key.to_string(), $crate::json!({ $($inner)* }))]);
        $($crate::json_object_entries!($obj; $($rest)*);)?
    };
    ($obj:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $obj.extend([($key.to_string(), $crate::json!([ $($inner)* ]))]);
        $($crate::json_object_entries!($obj; $($rest)*);)?
    };
    ($obj:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $obj.extend([($key.to_string(), $crate::Value::Null)]);
        $($crate::json_object_entries!($obj; $($rest)*);)?
    };
    ($obj:ident; $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $obj.extend([($key.to_string(), $crate::to_value(&$value))]);
        $($crate::json_object_entries!($obj; $($rest)*);)?
    };
}

/// Internal: munch array elements into `$arr`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_entries {
    ($arr:ident;) => {};
    ($arr:ident; { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $arr.extend([$crate::json!({ $($inner)* })]);
        $($crate::json_array_entries!($arr; $($rest)*);)?
    };
    ($arr:ident; [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $arr.extend([$crate::json!([ $($inner)* ])]);
        $($crate::json_array_entries!($arr; $($rest)*);)?
    };
    ($arr:ident; null $(, $($rest:tt)*)?) => {
        $arr.extend([$crate::Value::Null]);
        $($crate::json_array_entries!($arr; $($rest)*);)?
    };
    ($arr:ident; $value:expr $(, $($rest:tt)*)?) => {
        $arr.extend([$crate::to_value(&$value)]);
        $($crate::json_array_entries!($arr; $($rest)*);)?
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_keep_insertion_order_and_escape() {
        let v = json!({
            "b": 1,
            "a": "x\"y\n",
            "nested": {"k": [1, 2.5, true, null]},
            "opt_none": Option::<u32>::None,
        });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.find("\"b\"").unwrap() < s.find("\"a\"").unwrap());
        assert!(s.contains("\\\"y\\n"));
        assert!(s.contains("null"));
    }

    #[test]
    fn numbers_render_as_json() {
        assert_eq!(Number::I(-3).to_string(), "-3");
        assert_eq!(Number::U(u64::MAX).to_string(), u64::MAX.to_string());
        assert_eq!(Number::F(2.0).to_string(), "2.0");
        assert_eq!(Number::F(f64::NAN).to_string(), "null");
    }

    #[test]
    fn expressions_and_containers_convert() {
        let rows = vec![(1u32, 2usize), (3, 4)];
        let arr: [usize; 3] = [7, 8, 9];
        let v = json!({"rows": rows, "arr": arr, "calc": 21 * 2});
        match &v {
            Value::Object(entries) => {
                assert_eq!(entries.len(), 3);
                assert_eq!(entries[2].1, Value::Number(Number::I(42)));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
