//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the small slice of the `rand` API it actually uses:
//!
//! - [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (`seed_from_u64`), so every stream in the workspace is
//!   reproducible bit-for-bit across platforms and thread counts;
//! - [`SeedableRng`] — the seeding entry point;
//! - [`RngExt`] — `random::<T>()` and `random_range(..)`, blanket-implemented
//!   for every [`RngCore`].
//!
//! The statistical quality of xoshiro256++ is more than sufficient for the
//! generators and simulators here; nothing in the workspace needs
//! cryptographic randomness.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// One round of the SplitMix64 output permutation (used for state expansion).
#[inline]
fn splitmix64(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Plain owned state (`[u64; 4]`), hence `Send + Sync` and trivially
    /// clonable — a requirement for the deterministic parallel fan-out in
    /// `remote-peering` (each worker owns independently seeded streams).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, as rand_xoshiro does: avoids
            // the all-zero state and decorrelates nearby seeds.
            let mut z = seed;
            let s = [
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types drawable uniformly via [`RngExt::random`].
pub trait StandardUniform: Sized {
    /// Draw one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uniform_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable via [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn draw_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire's method
/// without the rejection step; the bias is below 2^-64 per draw, invisible
/// to every consumer here, and the draw stays a single `next_u64` so streams
/// are easy to reason about).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn draw_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn draw_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                lo.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn draw_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let u = <$t as StandardUniform>::draw(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The ergonomic sampling surface, blanket-implemented for every source.
pub trait RngExt: RngCore {
    /// Draw a `T` from its standard uniform distribution (`[0, 1)` for
    /// floats, full width for integers).
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T {
        T::draw(self)
    }

    /// Draw uniformly from `range` (half-open or inclusive).
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.draw_from(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let k = r.random_range(3..17usize);
            assert!((3..17).contains(&k));
            let v = r.random_range(10..=20u64);
            assert!((10..=20).contains(&v));
            let f = r.random_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn mean_of_unit_uniform_is_centered() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
