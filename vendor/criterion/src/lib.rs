//! Offline vendored stand-in for `criterion`.
//!
//! Provides the `criterion_group!`/`criterion_main!`/`bench_function`
//! surface with a simple but honest measurement loop: warm up, pick an
//! iteration count targeting a fixed measurement window, report mean time
//! per iteration. No statistics machinery, no HTML reports — results print
//! one line per benchmark:
//!
//! ```text
//! campaign/probe_all_parallel  time: 184.21 ms/iter  (12 iters)
//! ```
//!
//! Environment knobs:
//! - `CRITERION_MEASURE_MS` — target measurement window per benchmark in
//!   milliseconds (default 1000).

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` call sites.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup allocations (accepted, not used).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

fn measure_window() -> Duration {
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1000);
    Duration::from_millis(ms.max(1))
}

/// The benchmark driver.
pub struct Criterion {
    window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            window: measure_window(),
        }
    }
}

impl Criterion {
    /// Run one benchmark and print its mean iteration time.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            window: self.window,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters == 0 {
            println!("{name}  time: <no measurement>");
        } else {
            let per_iter = b.total.as_secs_f64() / b.iters as f64;
            println!(
                "{name}  time: {}  ({} iters)",
                format_seconds(per_iter),
                b.iters
            );
        }
        self
    }

    /// Start a named group; benchmarks print as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing a `group/` prefix. The real
/// criterion's sampling knobs are accepted and ignored — this harness
/// calibrates iteration counts from the measurement window instead.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for call-site compatibility; the window-based calibration
    /// ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark under the group's prefix.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// End the group (no-op; kept for call-site compatibility).
    pub fn finish(self) {}
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s/iter")
    } else if s >= 1e-3 {
        format!("{:.2} ms/iter", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2} µs/iter", s * 1e6)
    } else {
        format!("{:.1} ns/iter", s * 1e9)
    }
}

/// Passed to the benchmark closure; runs the measured routine.
pub struct Bencher {
    window: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measure `routine` repeatedly until the measurement window fills.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warmup + calibration: one untimed run.
        let t0 = Instant::now();
        black_box(routine());
        let first = t0.elapsed().max(Duration::from_nanos(50));

        let target = self.window;
        let planned = (target.as_secs_f64() / first.as_secs_f64()).clamp(1.0, 1e7) as u64;
        let start = Instant::now();
        for _ in 0..planned {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = planned;
    }

    /// Measure `routine` over inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let first = t0.elapsed().max(Duration::from_nanos(50));

        let target = self.window;
        let planned = (target.as_secs_f64() / first.as_secs_f64()).clamp(1.0, 1e6) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..planned {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = planned;
    }
}

/// Define a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. --bench); ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("smoke/iter", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
