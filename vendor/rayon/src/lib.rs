//! Offline vendored stand-in for `rayon`.
//!
//! Implements the slice-of-work surface this workspace uses —
//! `par_iter().map(f).collect::<Vec<_>>()`, [`join`], and the global
//! thread-count knobs — over `std::thread::scope`. The execution model:
//!
//! - Work items are claimed from an atomic cursor, so load balances even
//!   when items differ wildly in cost (one big IXP vs many small ones).
//! - Each worker buffers `(index, result)` pairs; the caller reassembles in
//!   input order. **Output order therefore never depends on scheduling** —
//!   the property the workspace's parallel-determinism tests pin down.
//! - A panic in any worker propagates to the caller at scope exit, like
//!   rayon.
//!
//! Thread count resolution order: `ThreadPoolBuilder::build_global`
//! override, then `RAYON_NUM_THREADS`, then `available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod iter;

/// `use rayon::prelude::*` surface.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator};
}

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0); // 0 = unset

/// The number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error from [`ThreadPoolBuilder::build_global`] (never produced here;
/// kept for call-site compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures the global thread count, mirroring rayon's builder.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Use exactly `n` worker threads (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install the configuration globally. Unlike real rayon this may be
    /// called repeatedly; the last call wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon::join worker panicked");
        (ra, rb)
    })
}

/// Order-preserving parallel map over a slice: the engine under the
/// `par_iter()` adapters.
pub fn par_map_slice<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });

    // Reassemble in input order.
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for bucket in &mut buckets {
        for (i, r) in bucket.drain(..) {
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every index produced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_serial_under_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x)).collect();
        let parallel: Vec<u64> = items.par_iter().map(|&x| x.wrapping_mul(x)).collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn into_par_iter_consumes_vecs() {
        let owned: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let lens: Vec<usize> = owned.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 1, 1]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 40 + 2, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn empty_input_is_fine() {
        let items: Vec<u32> = Vec::new();
        let out: Vec<u32> = items.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
