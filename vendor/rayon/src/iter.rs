//! Parallel iterator adapters: `par_iter()` / `into_par_iter()` with
//! `map` and `collect`, evaluated eagerly through
//! [`par_map_slice`](crate::par_map_slice()).

use crate::par_map_slice;
use std::sync::Mutex;

/// Borrowing entry point: `collection.par_iter()`.
pub trait IntoParallelRefIterator<'a> {
    /// The adapter type.
    type Iter;
    /// A parallel iterator borrowing `self`'s elements.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Consuming entry point: `collection.into_par_iter()`.
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// The adapter type.
    type Iter;
    /// A parallel iterator owning `self`'s elements.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIntoIter<T>;
    fn into_par_iter(self) -> ParIntoIter<T> {
        ParIntoIter { items: self }
    }
}

/// Parallel iterator over borrowed elements.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Apply `f` to every element in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Collect the borrowed elements (requires `Clone`).
    pub fn collect<C>(self) -> C
    where
        T: Clone + Send,
        C: FromParallelResults<T>,
    {
        C::from_results(par_map_slice(self.items, |t| t.clone()))
    }
}

/// Mapped parallel iterator over borrowed elements.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Run the map and collect results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromParallelResults<R>,
    {
        C::from_results(par_map_slice(self.items, self.f))
    }
}

/// Parallel iterator over owned elements.
pub struct ParIntoIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIntoIter<T> {
    /// Apply `f` to every element in parallel, consuming them.
    pub fn map<R, F>(self, f: F) -> ParIntoMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIntoMap {
            items: self.items,
            f,
        }
    }
}

/// Mapped parallel iterator over owned elements.
pub struct ParIntoMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParIntoMap<T, F> {
    /// Run the map and collect results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromParallelResults<R>,
    {
        // Ownership transfer to workers goes through per-slot mutexes: each
        // index is claimed exactly once, so the locks never contend beyond
        // their single take().
        let slots: Vec<Mutex<Option<T>>> = self
            .items
            .into_iter()
            .map(|v| Mutex::new(Some(v)))
            .collect();
        let indices: Vec<usize> = (0..slots.len()).collect();
        let f = &self.f;
        let results = par_map_slice(&indices, move |&i| {
            let value = slots[i]
                .lock()
                .expect("slot lock")
                .take()
                .expect("each index claimed once");
            f(value)
        });
        C::from_results(results)
    }
}

/// Targets of `collect()`; the vendored stand-in for `FromParallelIterator`.
pub trait FromParallelResults<R> {
    /// Build the collection from in-order results.
    fn from_results(results: Vec<R>) -> Self;
}

impl<R> FromParallelResults<R> for Vec<R> {
    fn from_results(results: Vec<R>) -> Self {
        results
    }
}
