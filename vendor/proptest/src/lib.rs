//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset of the proptest surface this workspace's property
//! tests use — `proptest!`, `prop_assert*`, `prop_oneof!`, [`Just`](strategy::Just),
//! `any::<T>()`, numeric-range strategies, tuple strategies, `prop_map`,
//! and `collection::vec` — on top of a deterministic per-test RNG.
//!
//! Differences from real proptest, deliberate for this environment:
//!
//! - **No shrinking.** A failing case panics with the generated inputs via
//!   the assertion message; cases are reproducible because the stream is a
//!   pure function of the test name, so a failure recurs on re-run.
//! - **Deterministic by construction.** No entropy source is consulted;
//!   `cargo test` produces identical explorations on every machine and
//!   under any `RAYON_NUM_THREADS`, which the CI determinism matrix relies
//!   on.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

/// Deterministic source for strategy sampling.
pub mod test_runner {
    use super::*;

    /// The RNG handed to strategies; a thin wrapper over the vendored
    /// [`StdRng`], seeded from the test's name.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Seed deterministically from a test identifier.
        pub fn for_test(name: &str) -> TestRng {
            // FNV-1a over the name, so every test explores its own stream.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Execution parameters for one `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 48 keeps the suite quick while
            // still exercising each property across a spread of inputs.
            ProptestConfig { cases: 48 }
        }
    }
}

/// Strategies the prelude re-exports.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// An inclusive-exclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run every property in the block as a `#[test]`, generating
/// [`ProptestConfig::cases`](test_runner::ProptestConfig) inputs per test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::for_test(::core::stringify!($name));
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
///
/// Expands to `continue` on the case loop, so it must appear at the top
/// level of the property body (not inside a nested loop) — which is how
/// every call site in this workspace uses it.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Assert within a property (panics with context; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_are_bounded(x in 3u64..17, f in -1.5f64..2.5, k in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.5..2.5).contains(&f));
            prop_assert!(k < 5);
        }

        #[test]
        fn tuples_and_maps_compose(
            p in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b),
            mut v in crate::collection::vec(0u8..4, 1..9),
        ) {
            prop_assert!(p <= 18);
            prop_assert!(!v.is_empty() && v.len() < 9);
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn oneof_picks_only_listed_values(t in prop_oneof![Just(64u8), Just(255u8)]) {
            prop_assert!(t == 64 || t == 255);
        }

        #[test]
        fn any_covers_the_space(seed in any::<u64>()) {
            // Smoke: values differ across cases with overwhelming
            // probability; just ensure the draw happens.
            let _ = seed;
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0u64..1000, 0.0f64..1.0);
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
