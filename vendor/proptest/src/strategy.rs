//! Strategy trait and combinators.

use crate::test_runner::TestRng;
use rand::RngExt;

/// A recipe for generating values of one type.
///
/// Object-safe core (`generate`) plus sized combinators, so strategies can
/// be boxed for heterogeneous unions (`prop_oneof!`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase for storage in heterogeneous collections.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// A union over `arms`; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let k = rng.random_range(0..self.0.len());
        self.0[k].generate(rng)
    }
}

// --- Numeric range strategies -------------------------------------------

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

// --- Tuple strategies ----------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// --- any::<T>() ----------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self { rng.random::<$t>() }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: magnitude up to ~1e9 on either sign, which is
        // what numeric property tests want to explore.
        (rng.random::<f64>() - 0.5) * 2e9
    }
}

/// Strategy over a type's whole (finite) domain.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}
