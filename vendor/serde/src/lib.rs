//! Offline vendored stand-in for `serde`.
//!
//! `Serialize` and `Deserialize` exist here as *marker* traits, blanket
//! implemented for every type: the workspace's derives document which types
//! are data (and keep the door open for a real serde once the environment
//! has network access), while the only serialization that actually runs is
//! the hand-built JSON in `vendor/serde_json`.

// The derive macros live in the macro namespace, the traits in the type
// namespace; both can share a name, exactly as in real serde.
pub use serde_derive::{Deserialize, Serialize};

/// Marker: this type is conceptually serializable.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker: this type is conceptually deserializable.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
