//! Offline vendored stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its domain types as
//! documentation of intent, but never round-trips them through a serde data
//! format — the only JSON actually emitted goes through `serde_json::Value`,
//! which is built by hand (see `vendor/serde_json`). The vendored `serde`
//! crate therefore blanket-implements its marker traits for every type, and
//! these derives only need to *parse*, not generate: each expands to nothing.
//!
//! The `#[serde(...)]` helper attribute is still declared so any future
//! field annotations keep compiling.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; the marker trait is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; the marker trait is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
